#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gen/random_arch.hpp"
#include "lte/receiver.hpp"
#include "model/desc.hpp"
#include "model/load.hpp"
#include "model/shaping.hpp"
#include "study/adaptive.hpp"
#include "study/study.hpp"

/// The adaptive backend (docs/DESIGN.md §15): the periodicity detector's
/// firing contract, the certify-then-fast-forward pass's bit-identity
/// against the equivalent reference, refusal/re-entry around regime
/// changes, and the Report fidelity columns (golden files). The governing
/// property is the same as everywhere else in this repo: whatever the
/// detector decides, the observable traces must equal the reference's —
/// extrapolation is allowed only when it is invisible.

namespace maxev {
namespace {

using study::AdaptiveModel;
using study::AdaptiveOptions;
using study::Backend;
using study::PeriodDetector;
using study::RunConfig;
using study::Scenario;

// ---------------------------------------------------------------- detector

PeriodDetector::Options det_opts(std::uint32_t max_period,
                                 std::uint32_t stable_periods) {
  PeriodDetector::Options o;
  o.max_period = max_period;
  o.stable_periods = stable_periods;
  return o;
}

TEST(PeriodDetectorTest, NeverFiresBeforeKStableIterations) {
  // Exactly periodic from the first frame (P = 1, Λ = {100, 70}). With
  // K = 3 the third identical delta lands with frame 3, so the detector
  // must stay silent through frame 2 and fire exactly at K + 1 frames.
  PeriodDetector det(2, det_opts(8, 3));
  for (std::int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(det.stable().has_value(), j >= 4) << "after " << j << " frames";
    det.observe({100 * j, 70 * j});
  }
  const auto d = det.stable();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->period, 1u);
  EXPECT_EQ(d->lambda, (std::vector<std::int64_t>{100, 70}));
  EXPECT_EQ(det.observed(), 8u);
}

TEST(PeriodDetectorTest, SmallestStablePeriodWinsOnAlternatingDeltas) {
  // Increments alternate +10 / +30: no P = 1 regularity ever, but the
  // two-step deltas are the constant {40, 40} — the detector must report
  // the minimal vector period 2 with Λ = v(j) − v(j−2).
  PeriodDetector det(2, det_opts(8, 3));
  std::int64_t v = 0;
  std::vector<std::int64_t> values;
  for (int j = 0; j < 12; ++j) {
    det.observe({v, v + 5});
    values.push_back(v);
    v += (j % 2 == 0) ? 10 : 30;
  }
  const auto d = det.stable();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->period, 2u);
  EXPECT_EQ(d->lambda, (std::vector<std::int64_t>{40, 40}));
  // P = 1 never accumulates: consecutive deltas always differ, so its
  // count is stuck at the single just-seen delta.
  EXPECT_LT(det.stable_count(1), 3u);
  EXPECT_GE(det.stable_count(2), 3u);
}

TEST(PeriodDetectorTest, AperiodicSeriesNeverFires) {
  PeriodDetector det(1, det_opts(8, 3));
  std::int64_t v = 0;
  for (std::int64_t j = 0; j < 50; ++j) {
    v += 100 + (j * j) % 17;  // strictly monotone, never periodic mod 8
    det.observe({v});
    EXPECT_FALSE(det.stable().has_value()) << "after frame " << j;
  }
}

TEST(PeriodDetectorTest, EpsilonFramePoisonsEveryCandidate) {
  PeriodDetector det(1, det_opts(4, 3));
  std::int64_t v = 0;
  for (int j = 0; j < 5; ++j) det.observe({v += 10});
  ASSERT_TRUE(det.stable().has_value());
  det.observe({v += 10}, /*any_eps=*/true);
  EXPECT_FALSE(det.stable().has_value());
  // Stability rebuilds only from post-ε frames: K fresh deltas needed.
  for (int j = 0; j < 4; ++j) {
    det.observe({v += 10});
    EXPECT_EQ(det.stable().has_value(), j == 3) << "post-eps frame " << j;
  }
}

TEST(PeriodDetectorTest, ReentersAfterMidRunPerturbation) {
  // Periodic, then a one-off jump, then periodic again with the same rate:
  // the jump must break stability (no firing across it), and the detector
  // must re-converge within K + 1 frames of the regime settling.
  PeriodDetector det(1, det_opts(4, 3));
  std::int64_t v = 0;
  for (int j = 0; j < 6; ++j) det.observe({v += 10});
  ASSERT_TRUE(det.stable().has_value());
  det.observe({v += 500});  // perturbation: delta 500, count resets
  EXPECT_FALSE(det.stable().has_value());
  // Within K frames of the regime settling, the true P = 1 rate is the
  // smallest stable period again. (A jump-spanning window can transiently
  // alias as a longer period on the way — certification, not the
  // detector, is the correctness guard — so only the endpoint is pinned.)
  for (int j = 0; j < 3; ++j) det.observe({v += 10});
  const auto d = det.stable();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->period, 1u);
  EXPECT_EQ(d->lambda, (std::vector<std::int64_t>{10}));
}

TEST(PeriodDetectorTest, ResetDiscardsRegularityButKeepsCounting) {
  PeriodDetector det(1, det_opts(4, 2));
  std::int64_t v = 0;
  for (int j = 0; j < 5; ++j) det.observe({v += 10});
  ASSERT_TRUE(det.stable().has_value());
  const std::uint64_t seen = det.observed();
  det.reset();
  EXPECT_FALSE(det.stable().has_value());
  EXPECT_EQ(det.observed(), seen);  // frame clock is not rewound
  for (int j = 0; j < 3; ++j) det.observe({v += 10});
  EXPECT_TRUE(det.stable().has_value());
}

// ------------------------------------------------------------- run helpers

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// A minimal strictly periodic chain: src (1 µs grid, constant attrs) ->
/// f (constant load) -> sink. Periodic from the very first token, so the
/// adaptive backend must always certify and extrapolate.
model::ArchitectureDesc periodic_chain(std::uint64_t tokens) {
  model::ArchitectureDesc d;
  const auto r =
      d.add_resource("cpu", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("f", r);
  d.fn_read(f, in);
  d.fn_execute(f, model::constant_ops(1000));
  d.fn_write(f, out);
  d.add_source("src", in, tokens, model::PeriodicTimeFn{0, 1'000'000},
               model::ConstantAttrsFn{});
  d.add_sink("sink", out);
  d.validate();
  return d;
}

gen::RandomArchConfig steady_cfg(std::uint64_t tokens) {
  gen::RandomArchConfig cfg;
  cfg.tokens = tokens;
  cfg.steady_shaping = true;
  cfg.periodic_source_probability = 1.0;
  cfg.fifo_probability = 0.0;  // FIFO boundaries structurally refuse
  return cfg;
}

std::unique_ptr<study::Model> run_backend(const Backend& b, const Scenario& s,
                                          int threads = 1) {
  RunConfig rc;
  rc.threads = threads;
  auto m = b.instantiate(s, rc);
  EXPECT_TRUE(m->run().completed);
  return m;
}

/// The adaptive contract: every *observation* equals the reference's —
/// instants both directions, sorted usage, completion time. Kernel
/// counters are exempt by design: a fast-forwarded run stops its kernel
/// early, that is the whole point.
void expect_same_traces(const study::Model& ref, const study::Model& got,
                        const std::string& ctx) {
  EXPECT_EQ(trace::compare_instants(ref.instants(), got.instants()),
            std::nullopt)
      << ctx;
  EXPECT_EQ(trace::compare_instants(got.instants(), ref.instants()),
            std::nullopt)
      << ctx;
  trace::UsageTraceSet ru = ref.usage();
  trace::UsageTraceSet gu = got.usage();
  ru.sort_all();
  gu.sort_all();
  EXPECT_EQ(trace::compare_usage(ru, gu), std::nullopt) << ctx;
  EXPECT_EQ(ref.end_time(), got.end_time()) << ctx;
}

Scenario clones(const model::DescPtr& desc, std::size_t n) {
  std::vector<Scenario> parts;
  for (std::size_t i = 0; i < n; ++i)
    parts.emplace_back("inst" + std::to_string(i), desc);
  return study::compose("clones", parts);
}

// --------------------------------------------------------- model: exactness

TEST(AdaptiveModelTest, PeriodicFromT0ExtrapolatesBitIdentically) {
  const auto desc = model::share(periodic_chain(200));
  const Scenario s("chain", desc);
  const auto ref = run_backend(Backend::equivalent(), s);
  const auto ad = run_backend(Backend::adaptive(), s);
  expect_same_traces(*ref, *ad, "periodic chain");

  const auto st = ad->adaptive_stats();
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->extrapolated);
  EXPECT_EQ(st->max_error_ps, 0);  // exact certification, zero tolerance
  EXPECT_EQ(st->detected_period, 1u);
  EXPECT_GT(st->extrapolated_iterations, 0u);
  EXPECT_EQ(st->detected_at + st->extrapolated_iterations, 200u);
  // The analytic cross-check agrees with the source period.
  EXPECT_NEAR(st->analytic_ratio_ps, 1'000'000.0, 1.0);
}

TEST(AdaptiveModelTest, LteFixedFrameExtrapolatesTheSubframePeriod) {
  lte::ReceiverConfig cfg;
  cfg.symbols = 30 * lte::kSymbolsPerSubframe;
  lte::FrameParams frame;
  frame.n_prb = 50;
  frame.modulation = lte::Modulation::kQam64;
  frame.code_rate = 0.75;
  cfg.fixed_frame = frame;
  const auto desc = model::share(lte::make_receiver(cfg));
  const Scenario s("rx", desc);

  const auto ref = run_backend(Backend::equivalent(), s);
  const auto ad = run_backend(Backend::adaptive(), s);
  expect_same_traces(*ref, *ad, "lte fixed frame");

  const auto st = ad->adaptive_stats();
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->extrapolated);
  EXPECT_EQ(st->max_error_ps, 0);
  // The minimal vector period of a 14-symbol subframe divides 14.
  ASSERT_GT(st->detected_period, 0u);
  EXPECT_EQ(14u % st->detected_period, 0u);
}

TEST(AdaptiveModelTest, MinIterationsFloorsDetection) {
  const auto desc = model::share(periodic_chain(60));
  AdaptiveOptions opts;
  opts.min_iterations = 60;  // the floor is never reached before completion
  const Scenario s("chain", desc);
  const auto ref = run_backend(Backend::equivalent(), s);
  const auto ad = run_backend(Backend::adaptive(opts), s);
  expect_same_traces(*ref, *ad, "min_iterations floor");
  ASSERT_TRUE(ad->adaptive_stats().has_value());
  EXPECT_FALSE(ad->adaptive_stats()->extrapolated);
}

TEST(AdaptiveModelTest, HorizonRunsNeverFastForward) {
  const auto desc = model::share(periodic_chain(100));
  const Scenario s("chain", desc);
  const auto ref = run_backend(Backend::equivalent(), s);

  auto ad = Backend::adaptive().instantiate(s);
  const auto mid = ad->run(TimePoint::at_ps(20'000'000));  // 20 of 100 µs
  EXPECT_FALSE(mid.completed);
  ASSERT_TRUE(ad->adaptive_stats().has_value());
  EXPECT_FALSE(ad->adaptive_stats()->extrapolated);
  // Resuming without a horizon completes — and may fast-forward — but the
  // published traces still equal the reference's.
  EXPECT_TRUE(ad->run().completed);
  expect_same_traces(*ref, *ad, "resume after horizon");
}

// ----------------------------------------------------- model: differential

TEST(AdaptiveSweepTest, SteadyWorkloadsMatchReferenceBitForBit) {
  const gen::RandomArchConfig cfg = steady_cfg(60);
  int extrapolated = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto desc = model::share(gen::make_random_architecture(seed, cfg));
    const Scenario s("solo", desc);
    const std::string ctx = "seed " + std::to_string(seed);
    const auto ref = run_backend(Backend::equivalent(), s);
    const auto ad = run_backend(Backend::adaptive(), s);
    expect_same_traces(*ref, *ad, ctx);
    const auto st = ad->adaptive_stats();
    ASSERT_TRUE(st.has_value()) << ctx;
    if (st->extrapolated) {
      ++extrapolated;
      EXPECT_EQ(st->max_error_ps, 0) << ctx;
      EXPECT_GT(st->detected_period, 0u) << ctx;
    }
  }
  // The sweep must not pass vacuously: most steady seeds extrapolate.
  EXPECT_GE(extrapolated, 13);
}

TEST(AdaptiveSweepTest, GeneralWorkloadsFallBackExactly) {
  // Opaque closures, FIFOs, multi-rate producer bundles: whatever the
  // detector or certifier does (mostly refuse), the traces must equal the
  // reference's.
  gen::RandomArchConfig cfg;
  cfg.tokens = 40;
  cfg.multi_rate_producer_probability = 0.4;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto desc = model::share(gen::make_random_architecture(seed, cfg));
    const Scenario s("solo", desc);
    const std::string ctx = "general seed " + std::to_string(seed);
    const auto ref = run_backend(Backend::equivalent(), s);
    const auto ad = run_backend(Backend::adaptive(), s);
    expect_same_traces(*ref, *ad, ctx);
  }
}

TEST(AdaptiveSweepTest, WarmupThenPeriodicStaysWithinTheBound) {
  gen::RandomArchConfig cfg = steady_cfg(120);
  cfg.warmup_tokens = 20;
  int extrapolated = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto desc = model::share(gen::make_random_architecture(seed, cfg));
    const Scenario s("warmup", desc);
    const std::string ctx = "warmup seed " + std::to_string(seed);
    const auto ref = run_backend(Backend::equivalent(), s);
    const auto ad = run_backend(Backend::adaptive(), s);
    expect_same_traces(*ref, *ad, ctx);
    const auto st = ad->adaptive_stats();
    ASSERT_TRUE(st.has_value()) << ctx;
    if (st->extrapolated) {
      ++extrapolated;
      // Zero tolerance: any engaged fast-forward is provably exact, and
      // the reported bound says so.
      EXPECT_EQ(st->max_error_ps, 0) << ctx;
    }
  }
  EXPECT_GE(extrapolated, 5);
}

TEST(AdaptiveSweepTest, ComposedGroupsDeterministicAcrossThreads) {
  const gen::RandomArchConfig cfg = steady_cfg(50);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto desc = model::share(gen::make_random_architecture(seed, cfg));
    const Scenario composed = clones(desc, 3);
    ASSERT_TRUE(composed.batchable());
    const std::string ctx = "composed seed " + std::to_string(seed);
    const auto ref = run_backend(Backend::equivalent(), composed);
    for (const int threads : {1, 2, 8}) {
      const auto ad = run_backend(Backend::adaptive(), composed, threads);
      expect_same_traces(*ref, *ad,
                         ctx + " t" + std::to_string(threads));
    }
  }
}

// ------------------------------------------------- model: refusal/re-entry

TEST(AdaptiveModelTest, RateSwitchRefusesThenReenters) {
  // A source that releases every 1 µs for 30 tokens, then every 3 µs: the
  // early detection certifies against the table, sees the switch ahead,
  // and refuses; after the switch the new regime certifies and the run
  // fast-forwards — still bit-identical.
  const std::uint64_t tokens = 80;
  auto values = std::make_shared<std::vector<std::int64_t>>();
  std::int64_t t = 0;
  for (std::uint64_t k = 0; k < tokens; ++k) {
    t += k < 30 ? 1'000'000 : 3'000'000;
    values->push_back(t);
  }
  model::ArchitectureDesc d;
  const auto r =
      d.add_resource("cpu", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("f", r);
  d.fn_read(f, in);
  d.fn_execute(f, model::constant_ops(1000));
  d.fn_write(f, out);
  d.add_source("src", in, tokens, model::TableTimeFn{std::move(values)},
               model::ConstantAttrsFn{});
  d.add_sink("sink", out);
  d.validate();

  const Scenario s("rate-switch", model::share(std::move(d)));
  const auto ref = run_backend(Backend::equivalent(), s);
  const auto ad = run_backend(Backend::adaptive(), s);
  expect_same_traces(*ref, *ad, "rate switch");

  const auto st = ad->adaptive_stats();
  ASSERT_TRUE(st.has_value());
  EXPECT_GE(st->refusals, 1u);
  EXPECT_FALSE(st->last_refusal.empty());
  EXPECT_TRUE(st->extrapolated);
  EXPECT_GE(st->detected_at, 30u);  // re-entry happened past the switch
  EXPECT_EQ(st->max_error_ps, 0);
}

TEST(AdaptiveModelTest, RegimeNotificationResetsTheDetector) {
  const Scenario s("chain", model::share(periodic_chain(20)));
  AdaptiveModel m(s, RunConfig{}, AdaptiveOptions{});
  EXPECT_EQ(m.stats().regime_resets, 0u);
  m.equivalent().runtime().notify_regime_change();
  EXPECT_EQ(m.stats().regime_resets, 1u);
  m.equivalent().runtime().notify_regime_change();
  EXPECT_EQ(m.stats().regime_resets, 2u);
}

// ------------------------------------------------------------ study plumbing

TEST(AdaptiveStudyTest, StudyFillsTheFidelityColumns) {
  study::Study st;
  st.add(Scenario("chain", periodic_chain(120)));
  st.add(Backend::equivalent());
  st.add(Backend::adaptive());
  const study::Report rep = st.run();

  const study::Cell& ad = rep.at("chain", "adaptive");
  EXPECT_FALSE(ad.failed);
  ASSERT_TRUE(ad.errors.has_value());
  EXPECT_TRUE(ad.errors->exact());
  EXPECT_EQ(ad.fidelity, "extrapolated");
  EXPECT_GT(ad.extrapolated_iterations, 0);
  EXPECT_EQ(ad.max_error_ps, 0);

  // The reference cell stays adaptive-less; the writers still emit the
  // columns because one cell in the report has them.
  const study::Cell& eq = rep.at("chain", "equivalent");
  EXPECT_TRUE(eq.fidelity.empty());
  EXPECT_EQ(eq.extrapolated_iterations, -1);
  const std::string path = ::testing::TempDir() + "maxev_adaptive_study.csv";
  rep.write_csv(path);
  const std::string csv = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(csv.find(",fidelity,extrapolated_iterations,max_error_ps,"),
            std::string::npos);
  EXPECT_NE(csv.find("extrapolated"), std::string::npos);
}

// ------------------------------------------------------------ report golden

/// A hand-built two-cell report (reference + adaptive) with every
/// wall-clock-dependent field zeroed, so the documents are byte-stable.
study::Report handmade_report(bool with_adaptive) {
  study::Report r;
  r.scenarios = {"s"};
  r.backends = {"equivalent", "adaptive"};
  r.reference_backend = "equivalent";

  study::Cell ref;
  ref.scenario = "s";
  ref.backend = "equivalent";
  ref.is_reference = true;
  ref.metrics.completed = true;
  ref.speedup_vs_reference = 1.0;
  ref.event_ratio_vs_reference = 1.0;
  ref.kernel_event_ratio_vs_reference = 1.0;
  r.cells.push_back(ref);

  if (with_adaptive) {
    study::Cell c;
    c.scenario = "s";
    c.backend = "adaptive";
    c.metrics.completed = true;
    c.errors = study::ErrorStats{};  // exact
    c.fidelity = "extrapolated";
    c.extrapolated_iterations = 42;
    c.max_error_ps = 0;
    r.cells.push_back(c);
  }
  return r;
}

TEST(AdaptiveReportTest, CsvGoldenWithFidelityColumns) {
  const std::string path = ::testing::TempDir() + "maxev_adaptive_golden.csv";
  handmade_report(true).write_csv(path);
  const std::string expected =
      "scenario,backend,reference,completed,wall_seconds,kernel_events,"
      "resumes,relation_events,instances_computed,arc_terms,sim_end_ps,"
      "graph_nodes,graph_paper_nodes,graph_arcs,speedup_vs_ref,"
      "event_ratio_vs_ref,kernel_event_ratio_vs_ref,exact,max_abs_error_s,"
      "mean_abs_error_s,fidelity,extrapolated_iterations,max_error_ps,"
      "status,error\n"
      "s,equivalent,1,1,0,0,0,0,0,0,0,0,0,0,1,1,1,,,,,,,ok,\n"
      "s,adaptive,0,1,0,0,0,0,0,0,0,0,0,0,0,0,0,1,0,0,extrapolated,42,0,"
      "ok,\n";
  EXPECT_EQ(slurp(path), expected);
  std::remove(path.c_str());
}

// Without an adaptive cell the documents are byte-identical to the legacy
// format: no fidelity columns, no fidelity JSON keys.
TEST(AdaptiveReportTest, CsvGoldenWithoutAdaptiveKeepsLegacyFormat) {
  const std::string path =
      ::testing::TempDir() + "maxev_adaptive_golden_legacy.csv";
  handmade_report(false).write_csv(path);
  const std::string expected =
      "scenario,backend,reference,completed,wall_seconds,kernel_events,"
      "resumes,relation_events,instances_computed,arc_terms,sim_end_ps,"
      "graph_nodes,graph_paper_nodes,graph_arcs,speedup_vs_ref,"
      "event_ratio_vs_ref,kernel_event_ratio_vs_ref,exact,max_abs_error_s,"
      "mean_abs_error_s,status,error\n"
      "s,equivalent,1,1,0,0,0,0,0,0,0,0,0,0,1,1,1,,,,ok,\n";
  EXPECT_EQ(slurp(path), expected);
  std::remove(path.c_str());
}

TEST(AdaptiveReportTest, JsonGoldenWithFidelityFields) {
  const std::string expected =
      R"({"scenarios":["s"],"backends":["equivalent","adaptive"],)"
      R"("reference":"equivalent","cells":[{"scenario":"s",)"
      R"("backend":"equivalent","reference":true,"completed":true,)"
      R"("wall_seconds":0,"kernel_events":0,"resumes":0,)"
      R"("relation_events":0,"instances_computed":0,"arc_terms":0,)"
      R"("sim_end_ps":0,"graph_nodes":0,"graph_paper_nodes":0,)"
      R"("graph_arcs":0,"speedup_vs_ref":1,"event_ratio_vs_ref":1,)"
      R"("kernel_event_ratio_vs_ref":1,"status":"ok"},{"scenario":"s",)"
      R"("backend":"adaptive","reference":false,"completed":true,)"
      R"("wall_seconds":0,"kernel_events":0,"resumes":0,)"
      R"("relation_events":0,"instances_computed":0,"arc_terms":0,)"
      R"("sim_end_ps":0,"graph_nodes":0,"graph_paper_nodes":0,)"
      R"("graph_arcs":0,"speedup_vs_ref":0,"event_ratio_vs_ref":0,)"
      R"("kernel_event_ratio_vs_ref":0,"fidelity":"extrapolated",)"
      R"("extrapolated_iterations":42,"max_error_ps":0,)"
      R"("errors":{"exact":true,"max_abs_seconds":0,"mean_abs_seconds":0,)"
      R"("instants_compared":0},"status":"ok"}]})";
  EXPECT_EQ(handmade_report(true).to_json(), expected);
}

TEST(AdaptiveReportTest, JsonWithoutAdaptiveOmitsFidelityFields) {
  const std::string doc = handmade_report(false).to_json();
  EXPECT_EQ(doc.find("fidelity"), std::string::npos);
  EXPECT_EQ(doc.find("extrapolated_iterations"), std::string::npos);
  EXPECT_EQ(doc.find("max_error_ps"), std::string::npos);
}

}  // namespace
}  // namespace maxev
