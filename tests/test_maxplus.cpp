#include <gtest/gtest.h>

#include "maxplus/cycle_ratio.hpp"
#include "maxplus/linear_system.hpp"
#include "maxplus/matrix.hpp"
#include "maxplus/scalar.hpp"
#include "maxplus/vector.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace maxev::mp {
namespace {

TEST(ScalarTest, DefaultIsEps) {
  Scalar s;
  EXPECT_TRUE(s.is_eps());
  EXPECT_FALSE(s.is_finite());
}

TEST(ScalarTest, IdentityElements) {
  const Scalar a = Scalar::of(42);
  // eps is the ⊕-identity.
  EXPECT_EQ(a + Scalar::eps(), a);
  EXPECT_EQ(Scalar::eps() + a, a);
  // e is the ⊗-identity.
  EXPECT_EQ(a * Scalar::e(), a);
  EXPECT_EQ(Scalar::e() * a, a);
  // eps is ⊗-absorbing.
  EXPECT_TRUE((a * Scalar::eps()).is_eps());
  EXPECT_TRUE((Scalar::eps() * a).is_eps());
}

TEST(ScalarTest, OplusIsMax) {
  EXPECT_EQ(Scalar::of(3) + Scalar::of(7), Scalar::of(7));
  EXPECT_EQ(Scalar::of(-3) + Scalar::of(-7), Scalar::of(-3));
}

TEST(ScalarTest, OtimesIsPlus) {
  EXPECT_EQ(Scalar::of(3) * Scalar::of(7), Scalar::of(10));
  EXPECT_EQ(Scalar::of(3) * Scalar::of(-7), Scalar::of(-4));
}

TEST(ScalarTest, OrderingWithEps) {
  EXPECT_LT(Scalar::eps(), Scalar::of(INT64_MIN + 1));
  EXPECT_LT(Scalar::of(1), Scalar::of(2));
  EXPECT_EQ(Scalar::eps() <=> Scalar::eps(), std::strong_ordering::equal);
}

TEST(ScalarTest, OverflowThrows) {
  EXPECT_THROW(Scalar::of(INT64_MAX) * Scalar::of(1), OverflowError);
  EXPECT_NO_THROW(Scalar::of(INT64_MAX) * Scalar::e());
}

TEST(ScalarTest, ValueOnEpsThrows) {
  EXPECT_THROW((void)Scalar::eps().value(), Error);
}

TEST(ScalarTest, TimeRoundTrip) {
  const TimePoint t = TimePoint::at_ps(123456);
  EXPECT_EQ(Scalar::from_time(t).to_time(), t);
  EXPECT_EQ(Scalar::from_duration(Duration::ns(2)).value(), 2000);
}

TEST(ScalarTest, ToString) {
  EXPECT_EQ(Scalar::eps().to_string(), "eps");
  EXPECT_EQ(Scalar::of(5).to_string(), "5");
}

// Semiring laws checked over a deterministic random sample.
class ScalarLawsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarLawsTest, SemiringLaws) {
  Rng rng(GetParam());
  auto draw = [&rng]() {
    if (rng.chance(0.15)) return Scalar::eps();
    return Scalar::of(rng.uniform_i64(-1'000'000, 1'000'000));
  };
  for (int i = 0; i < 50; ++i) {
    const Scalar a = draw(), b = draw(), c = draw();
    // ⊕ commutative, associative, idempotent.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + a, a);
    // ⊗ commutative (this semiring), associative.
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    // Distributivity of ⊗ over ⊕.
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarLawsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(VectorTest, Construction) {
  Vector v(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v[0].is_eps());
  const Vector w = Vector::of({1, 2, 3});
  EXPECT_EQ(w[2], Scalar::of(3));
}

TEST(VectorTest, OplusAndScale) {
  const Vector a = Vector::of({1, 5});
  const Vector b = Vector::of({3, 2});
  const Vector s = a + b;
  EXPECT_EQ(s[0], Scalar::of(3));
  EXPECT_EQ(s[1], Scalar::of(5));
  const Vector t = Scalar::of(10) * a;
  EXPECT_EQ(t[0], Scalar::of(11));
  EXPECT_EQ(t[1], Scalar::of(15));
}

TEST(VectorTest, SizeMismatchThrows) {
  EXPECT_THROW(Vector::of({1}) + Vector::of({1, 2}), Error);
  EXPECT_THROW((void)Vector(2).at(5), Error);
}

TEST(VectorTest, MaxEntry) {
  EXPECT_EQ(Vector::of({3, 9, 1}).max_entry(), Scalar::of(9));
  EXPECT_TRUE(Vector(2).max_entry().is_eps());
}

TEST(MatrixTest, IdentityIsOtimesNeutral) {
  const Matrix a = Matrix::of({{1, 2}, {INT64_MIN, 4}});
  const Matrix i = Matrix::identity(2);
  EXPECT_EQ(a * i, a);
  EXPECT_EQ(i * a, a);
}

TEST(MatrixTest, KnownProduct) {
  // ((1,eps),(2,3)) ⊗ ((0,4),(1,eps)):
  const Matrix a = Matrix::of({{1, INT64_MIN}, {2, 3}});
  const Matrix b = Matrix::of({{0, 4}, {1, INT64_MIN}});
  const Matrix p = a * b;
  EXPECT_EQ(p.at(0, 0), Scalar::of(1));   // 1⊗0
  EXPECT_EQ(p.at(0, 1), Scalar::of(5));   // 1⊗4
  EXPECT_EQ(p.at(1, 0), Scalar::of(4));   // max(2⊗0, 3⊗1)
  EXPECT_EQ(p.at(1, 1), Scalar::of(6));   // 2⊗4
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a = Matrix::of({{0, 2}, {INT64_MIN, 1}});
  const Vector x = Vector::of({5, 3});
  const Vector y = a * x;
  EXPECT_EQ(y[0], Scalar::of(5));  // max(0+5, 2+3)
  EXPECT_EQ(y[1], Scalar::of(4));
}

TEST(MatrixTest, PowAndZero) {
  const Matrix a = Matrix::of({{INT64_MIN, 1}, {INT64_MIN, INT64_MIN}});
  EXPECT_EQ(a.pow(0), Matrix::identity(2));
  EXPECT_EQ(a.pow(1), a);
  EXPECT_TRUE(a.pow(2).is_zero());  // nilpotent
  EXPECT_TRUE(Matrix::zero(2, 2).is_zero());
}

TEST(MatrixTest, ShapeErrors) {
  EXPECT_THROW(Matrix::of({{1}, {2}}) * Matrix::of({{1}, {2}}), Error);
  EXPECT_THROW(Matrix(2, 2) + Matrix(2, 3), Error);
  EXPECT_THROW(Matrix(2, 3).pow(2), Error);
  EXPECT_THROW((void)Matrix(2, 2).at(2, 0), Error);
}

TEST(KleeneStarTest, NilpotentStar) {
  // Acyclic chain: star accumulates path weights.
  const Matrix a =
      Matrix::of({{INT64_MIN, INT64_MIN}, {5, INT64_MIN}});  // arc 0 -> 1 (w=5)
  const Matrix s = kleene_star(a);
  EXPECT_EQ(s.at(0, 0), Scalar::e());
  EXPECT_EQ(s.at(1, 0), Scalar::of(5));
  EXPECT_EQ(s.at(1, 1), Scalar::e());
  EXPECT_TRUE(s.at(0, 1).is_eps());
}

TEST(KleeneStarTest, PositiveCycleThrows) {
  const Matrix a = Matrix::of({{1}});  // self-loop weight 1
  EXPECT_THROW(kleene_star(a), DescriptionError);
}

TEST(KleeneStarTest, ZeroCycleConverges) {
  const Matrix a = Matrix::of({{0}});  // self-loop weight 0
  const Matrix s = kleene_star(a);
  EXPECT_EQ(s.at(0, 0), Scalar::e());
}

TEST(KleeneStarTest, SolveImplicit) {
  // x0 = b0; x1 = x0 ⊗ 5 ⊕ b1.
  const Matrix a = Matrix::of({{INT64_MIN, INT64_MIN}, {5, INT64_MIN}});
  const Vector b = Vector::of({10, 2});
  const Vector x = solve_implicit(a, b);
  EXPECT_EQ(x[0], Scalar::of(10));
  EXPECT_EQ(x[1], Scalar::of(15));
}

TEST(LinearSystemTest, SimpleRecurrence) {
  // x(k) = x(k-1) ⊗ 3 ⊕ u(k); y = x. Pre-history ε.
  LinearSystem sys(1, 1, 1);
  sys.set_a_const(1, Matrix::of({{3}}));
  sys.set_b_const(0, Matrix::identity(1));
  sys.set_c_const(0, Matrix::identity(1));
  auto s0 = sys.step(Vector::of({0}));
  EXPECT_EQ(s0.y[0], Scalar::of(0));
  auto s1 = sys.step(Vector::of({1}));
  EXPECT_EQ(s1.y[0], Scalar::of(3));  // max(0+3, 1)
  auto s2 = sys.step(Vector::of({100}));
  EXPECT_EQ(s2.y[0], Scalar::of(100));
}

TEST(LinearSystemTest, ImplicitZeroLagResolved) {
  // x0 = u; x1 = x0 ⊗ 2 (within the same k).
  LinearSystem sys(2, 1, 1);
  Matrix a0(2, 2);
  a0.at(1, 0) = Scalar::of(2);
  sys.set_a_const(0, a0);
  Matrix b(2, 1);
  b.at(0, 0) = Scalar::e();
  sys.set_b_const(0, b);
  Matrix c(1, 2);
  c.at(0, 1) = Scalar::e();
  sys.set_c_const(0, c);
  auto s = sys.step(Vector::of({7}));
  EXPECT_EQ(s.x[0], Scalar::of(7));
  EXPECT_EQ(s.x[1], Scalar::of(9));
  EXPECT_EQ(s.y[0], Scalar::of(9));
}

TEST(LinearSystemTest, PrehistoryOption) {
  // x(k) = x(k-1) ⊗ 3: with pre-history e, x(0) = 3; with ε, x(0) = ε.
  LinearSystem sys(1, 1, 1);
  sys.set_a_const(1, Matrix::of({{3}}));
  sys.set_c_const(0, Matrix::identity(1));
  sys.set_prehistory(Scalar::e());
  auto s = sys.step(Vector(1));
  EXPECT_EQ(s.x[0], Scalar::of(3));

  sys.reset();
  sys.set_prehistory(Scalar::eps());
  auto s2 = sys.step(Vector(1));
  EXPECT_TRUE(s2.x[0].is_eps());
}

TEST(LinearSystemTest, KVaryingMatrices) {
  // x(k) = u(k) ⊗ k.
  LinearSystem sys(1, 1, 1);
  sys.set_b(0, [](std::uint64_t k) {
    return Matrix::of({{static_cast<std::int64_t>(k)}});
  });
  sys.set_c_const(0, Matrix::identity(1));
  EXPECT_EQ(sys.step(Vector::of({10})).y[0], Scalar::of(10));
  EXPECT_EQ(sys.step(Vector::of({10})).y[0], Scalar::of(11));
  EXPECT_EQ(sys.iteration(), 2u);
}

TEST(LinearSystemTest, InputDimensionChecked) {
  LinearSystem sys(1, 2, 1);
  EXPECT_THROW(sys.step(Vector::of({1})), Error);
}

TEST(CycleRatioTest, FeedForwardHasNoCycle) {
  std::vector<RatioArc> arcs = {{0, 1, 5.0, 0}, {1, 2, 3.0, 0}};
  const auto r = max_cycle_ratio(3, arcs);
  EXPECT_FALSE(r.has_cycle);
  EXPECT_DOUBLE_EQ(r.max_ratio, 0.0);
}

TEST(CycleRatioTest, SimpleLoop) {
  // Cycle of total weight 10 with total lag 1 => ratio 10.
  std::vector<RatioArc> arcs = {{0, 1, 6.0, 0}, {1, 0, 4.0, 1}};
  const auto r = max_cycle_ratio(2, arcs);
  EXPECT_TRUE(r.has_cycle);
  EXPECT_NEAR(r.max_ratio, 10.0, 1e-2);
}

TEST(CycleRatioTest, PicksMaximumCycle) {
  std::vector<RatioArc> arcs = {
      {0, 0, 4.0, 1},           // ratio 4
      {0, 1, 9.0, 0}, {1, 0, 9.0, 2},  // ratio 18/2 = 9
  };
  const auto r = max_cycle_ratio(2, arcs);
  EXPECT_NEAR(r.max_ratio, 9.0, 1e-2);
}

TEST(CycleRatioTest, LagTwoCycleHalvesRatio) {
  std::vector<RatioArc> arcs = {{0, 0, 10.0, 2}};
  const auto r = max_cycle_ratio(1, arcs);
  EXPECT_NEAR(r.max_ratio, 5.0, 1e-2);
}

TEST(CycleRatioTest, ZeroLagPositiveCycleThrows) {
  std::vector<RatioArc> arcs = {{0, 1, 1.0, 0}, {1, 0, 1.0, 0}};
  EXPECT_THROW((void)max_cycle_ratio(2, arcs), DescriptionError);
}

TEST(CycleRatioTest, BadEndpointThrows) {
  std::vector<RatioArc> arcs = {{0, 5, 1.0, 0}};
  EXPECT_THROW((void)max_cycle_ratio(2, arcs), Error);
}

}  // namespace
}  // namespace maxev::mp
