/// \file test_serve.cpp
/// The serve subsystem (docs/DESIGN.md §13): wire-format round-trips,
/// the structural-hash program cache, streaming sessions with
/// checkpoint/restore, and the line protocol. The load-bearing claims:
/// a description survives serialization structurally intact, incremental
/// feeding is bit-identical to a one-shot run, and a restored checkpoint
/// continues exactly where the original left off.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled.hpp"
#include "core/equivalent_model.hpp"
#include "gen/didactic.hpp"
#include "gen/random_arch.hpp"
#include "model/desc.hpp"
#include "serve/program_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"
#include "study/study.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"
#include "util/json.hpp"

namespace {

using namespace maxev;

// ------------------------------------------------------------- helpers ----

gen::DidacticConfig small_didactic() {
  gen::DidacticConfig cfg;
  cfg.tokens = 9;
  // A spaced-out source: with the default period of 0 every token releases
  // at the origin and the stream watermark (earliest[fed-1] - 1ps) stays
  // negative until the source is fully fed — nothing would stream.
  cfg.source_period = Duration::us(10);
  return cfg;
}

/// The didactic scenario with its source turned into a stream: the wire
/// document declares `{"type":"stream"}` and the caller feeds the tokens.
std::string streamified_didactic(const gen::DidacticConfig& cfg) {
  const JsonValue doc =
      json_parse(serve::desc_to_json(gen::make_didactic(cfg)));
  auto root = doc.members();
  auto d = root.at("desc").members();
  std::vector<JsonValue> sources;
  for (const JsonValue& src : d.at("sources").items()) {
    auto s = src.members();
    s["earliest"] =
        JsonValue::object({{"type", JsonValue::string("stream")}});
    s.erase("attrs");
    s.erase("gap");
    sources.push_back(JsonValue::object(std::move(s)));
  }
  d["sources"] = JsonValue::array(std::move(sources));
  root["desc"] = JsonValue::object(std::move(d));
  return json_dump(JsonValue::object(std::move(root)));
}

/// The full token set of the didactic source, straight from the
/// generator's behavioural functions.
std::vector<serve::Session::FedToken> didactic_tokens(
    const gen::DidacticConfig& cfg) {
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);
  const model::SourceDesc& src = desc.sources().front();
  std::vector<serve::Session::FedToken> tokens;
  for (std::uint64_t k = 0; k < src.count; ++k)
    tokens.push_back({src.earliest(k).count(), src.attrs(k)});
  return tokens;
}

/// One-shot reference run of the same didactic configuration.
struct OneShot {
  std::unique_ptr<core::EquivalentModel> model;
  explicit OneShot(const gen::DidacticConfig& cfg)
      : model(std::make_unique<core::EquivalentModel>(gen::make_didactic(cfg),
                                                      std::vector<bool>{})) {
    const auto out = model->run();
    EXPECT_TRUE(out.completed);
  }
};

void expect_matches_one_shot(const serve::Session& session,
                             const OneShot& ref) {
  const auto instant_diff =
      trace::compare_instants(ref.model->instants(), session.model().instants());
  EXPECT_FALSE(instant_diff.has_value()) << *instant_diff;
  const auto usage_diff =
      trace::compare_usage(ref.model->usage(), session.model().usage());
  EXPECT_FALSE(usage_diff.has_value()) << *usage_diff;
  EXPECT_EQ(session.model().end_time().count(),
            ref.model->end_time().count());
}

// ------------------------------------------------------ wire: descs ----

TEST(WireDescTest, DidacticRoundTripIsStructurallyEqual) {
  const model::ArchitectureDesc a = gen::make_didactic(small_didactic());
  const model::ArchitectureDesc b =
      serve::desc_from_json(serve::desc_to_json(a));
  EXPECT_TRUE(model::structurally_equal(a, b));
  EXPECT_EQ(model::structural_hash(a), model::structural_hash(b));
}

TEST(WireDescTest, DumpLoadDumpIsByteIdentical) {
  const std::string doc1 =
      serve::desc_to_json(gen::make_didactic(small_didactic()));
  const std::string doc2 =
      serve::desc_to_json(serve::desc_from_json(doc1));
  EXPECT_EQ(doc1, doc2);
}

TEST(WireDescTest, RandomArchitecturesRoundTripAcrossSeeds) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 4;
  cfg.multi_rate_producer_probability = 0.4;  // multi-rate bundles too
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const model::ArchitectureDesc a =
        gen::make_random_architecture(seed, cfg);
    const std::string doc1 = serve::desc_to_json(a);
    const model::ArchitectureDesc b = serve::desc_from_json(doc1);
    EXPECT_TRUE(model::structurally_equal(a, b)) << "seed " << seed;
    EXPECT_EQ(doc1, serve::desc_to_json(b)) << "seed " << seed;
  }
}

TEST(WireDescTest, RejectsWrongVersionAndMissingMembers) {
  EXPECT_THROW((void)serve::desc_from_json(R"({"desc":{}})"),
               serve::WireError);
  EXPECT_THROW(
      (void)serve::desc_from_json(R"({"maxev_wire":99,"desc":{}})"),
      serve::WireError);
  EXPECT_THROW((void)serve::desc_from_json(R"({"maxev_wire":1})"),
               serve::WireError);
}

TEST(WireDescTest, OpaqueLoadRoundTripsStructurallyButStubThrows) {
  // A hand-written lambda load cannot be introspected: it serializes as
  // {"type":"opaque"} and loads back as a stub that throws when called.
  model::ArchitectureDesc d;
  const auto r = d.add_resource("cpu", model::ResourcePolicy::kConcurrent,
                                1e9);
  const auto ch = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("f", r);
  d.fn_read(f, ch);
  d.fn_execute(f, [](const model::TokenAttrs& a, std::uint64_t) {
    return a.size * 3;
  });
  d.fn_write(f, out);
  d.add_source("src", ch, 2,
               [](std::uint64_t k) {
                 return TimePoint::at_ps(static_cast<std::int64_t>(k) * 10);
               },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("sink", out);
  d.validate();

  const model::ArchitectureDesc back =
      serve::desc_from_json(serve::desc_to_json(d));
  EXPECT_TRUE(model::structurally_equal(d, back));
  const model::LoadFn& load = back.functions()[0].body[1].load;
  EXPECT_THROW((void)load(model::TokenAttrs{}, 0), serve::WireError);
}

TEST(WireDescTest, StreamSourceRequiresFactory) {
  const std::string doc = streamified_didactic(small_didactic());
  EXPECT_THROW((void)serve::desc_from_json(doc), serve::WireError);
}

// --------------------------------------------------- wire: programs ----

TEST(WireProgramTest, DumpLoadDumpIsByteIdentical) {
  const core::CompiledPtr compiled =
      core::compile_abstraction(core::CompiledKey::make(
          model::share(gen::make_didactic(small_didactic())), {}, true, 0));
  const std::string doc1 = serve::program_to_json(compiled->program);
  const tdg::Program back = serve::program_from_json(doc1);
  EXPECT_EQ(doc1, serve::program_to_json(back));
  EXPECT_EQ(back.n_nodes, compiled->program.n_nodes);
}

TEST(WireProgramTest, RejectsCorruptTables) {
  const core::CompiledPtr compiled =
      core::compile_abstraction(core::CompiledKey::make(
          model::share(gen::make_didactic(small_didactic())), {}, true, 0));
  const JsonValue doc =
      json_parse(serve::program_to_json(compiled->program));
  auto members = doc.members();
  // Truncate a parallel table: the loader's shape validation must throw.
  members["static_pending"] = JsonValue::array({JsonValue::integer(0)});
  EXPECT_THROW(
      (void)serve::program_from_json(json_dump(JsonValue::object(members))),
      serve::WireError);
}

// ------------------------------------------------------ program cache ----

TEST(ProgramCacheTest, CountsHitsAndMisses) {
  serve::ProgramCache cache(4);
  const model::DescPtr desc =
      model::share(gen::make_didactic(small_didactic()));
  const auto key = core::CompiledKey::make(desc, {}, true, 0);
  bool hit = true;
  const core::CompiledPtr first = cache.get(key, &hit);
  EXPECT_FALSE(hit);
  const core::CompiledPtr second = cache.get(key, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ProgramCacheTest, CanonicalizesEmptyGroupToAllFunctions) {
  serve::ProgramCache cache(4);
  const model::DescPtr desc =
      model::share(gen::make_didactic(small_didactic()));
  (void)cache.get(core::CompiledKey::make(desc, {}, true, 0));
  const std::vector<bool> all(desc->functions().size(), true);
  bool hit = false;
  (void)cache.get(core::CompiledKey::make(desc, all, true, 0), &hit);
  EXPECT_TRUE(hit);  // the empty-group shorthand unifies with all-true
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ProgramCacheTest, EvictsLeastRecentlyUsed) {
  serve::ProgramCache cache(2);
  auto desc_of = [](std::uint64_t tokens) {
    gen::DidacticConfig cfg;
    cfg.tokens = tokens;
    return model::share(gen::make_didactic(cfg));
  };
  const model::DescPtr a = desc_of(3), b = desc_of(4), c = desc_of(5);
  const auto key = [](const model::DescPtr& d) {
    return core::CompiledKey::make(d, {}, true, 0);
  };
  (void)cache.get(key(a));
  (void)cache.get(key(b));
  (void)cache.get(key(a));  // a is now most recently used
  (void)cache.get(key(c));  // evicts b
  EXPECT_TRUE(cache.contains(key(a)));
  EXPECT_FALSE(cache.contains(key(b)));
  EXPECT_TRUE(cache.contains(key(c)));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

// ------------------------------------------------------------ session ----

TEST(SessionTest, PollBeforeAnyFeedIsBlocked) {
  serve::Session session(streamified_didactic(small_didactic()));
  const serve::Session::Delta d = session.poll();
  EXPECT_TRUE(d.blocked);
  EXPECT_FALSE(d.completed);
  EXPECT_TRUE(d.instants.empty());
}

TEST(SessionTest, IncrementalFeedIsBitIdenticalToOneShot) {
  const gen::DidacticConfig cfg = small_didactic();
  const std::vector<serve::Session::FedToken> tokens = didactic_tokens(cfg);
  ASSERT_EQ(tokens.size(), 9u);

  serve::Session session(streamified_didactic(cfg));
  ASSERT_TRUE(session.is_stream_source(0));
  // Three feed/poll rounds of 3 tokens each, then a completing poll.
  for (std::size_t round = 0; round < 3; ++round) {
    session.feed(0, {tokens.begin() + 3 * round,
                     tokens.begin() + 3 * (round + 1)});
    const serve::Session::Delta d = session.poll();
    EXPECT_FALSE(d.blocked);
  }
  const serve::Session::Delta final_delta = session.poll();
  EXPECT_TRUE(final_delta.completed);
  EXPECT_TRUE(session.completed());

  expect_matches_one_shot(session, OneShot(cfg));
}

TEST(SessionTest, DeltasAreCursorsOverTheFullTraces) {
  const gen::DidacticConfig cfg = small_didactic();
  const std::vector<serve::Session::FedToken> tokens = didactic_tokens(cfg);
  serve::Session session(streamified_didactic(cfg));

  std::map<std::string, std::vector<std::int64_t>> accumulated;
  for (std::size_t k = 0; k < tokens.size(); ++k) {
    session.feed(0, {tokens[k]});
    for (const auto& sd : session.poll().instants) {
      auto& arr = accumulated[sd.series];
      ASSERT_EQ(sd.start_k, arr.size()) << sd.series;
      arr.insert(arr.end(), sd.instants_ps.begin(), sd.instants_ps.end());
    }
  }
  for (const auto& sd : session.poll().instants) {
    auto& arr = accumulated[sd.series];
    ASSERT_EQ(sd.start_k, arr.size()) << sd.series;
    arr.insert(arr.end(), sd.instants_ps.begin(), sd.instants_ps.end());
  }

  for (const auto& [name, series] : session.model().instants().all()) {
    const auto it = accumulated.find(name);
    ASSERT_NE(it, accumulated.end()) << name;
    ASSERT_EQ(it->second.size(), series.size()) << name;
    for (std::size_t k = 0; k < series.size(); ++k)
      EXPECT_EQ(it->second[k], series.at(k).count()) << name << "[" << k << "]";
  }
}

TEST(SessionTest, FeedValidatesProtocol) {
  const gen::DidacticConfig cfg = small_didactic();
  const std::vector<serve::Session::FedToken> tokens = didactic_tokens(cfg);
  serve::Session session(streamified_didactic(cfg));

  EXPECT_THROW(session.feed(7, {tokens[0]}), serve::SessionError);
  session.feed(0, {tokens[0], tokens[1]});
  // Regressing earliest instants violates source monotonicity.
  EXPECT_THROW(session.feed(0, {{tokens[1].earliest_ps - 1, {}}}),
               serve::SessionError);
  // Overfeeding past the declared count.
  std::vector<serve::Session::FedToken> rest(tokens.begin() + 2,
                                             tokens.end());
  rest.push_back({tokens.back().earliest_ps + 1, {}});
  EXPECT_THROW(session.feed(0, rest), serve::SessionError);
  EXPECT_EQ(session.fed(0), 2u);
}

TEST(SessionTest, CheckpointRestoreContinuesBitIdentical) {
  const gen::DidacticConfig cfg = small_didactic();
  const std::vector<serve::Session::FedToken> tokens = didactic_tokens(cfg);

  serve::Session original(streamified_didactic(cfg));
  original.feed(0, {tokens.begin(), tokens.begin() + 4});
  (void)original.poll();

  const std::string ckpt = original.checkpoint();
  std::unique_ptr<serve::Session> restored = serve::Session::restore(ckpt);
  EXPECT_EQ(restored->fed(0), 4u);

  // Drive BOTH sessions through the same remaining rounds: every delta
  // must be identical, and both must land exactly on the one-shot traces.
  auto drive = [&](serve::Session& s) {
    std::vector<serve::Session::Delta> deltas;
    s.feed(0, {tokens.begin() + 4, tokens.begin() + 7});
    deltas.push_back(s.poll());
    s.feed(0, {tokens.begin() + 7, tokens.end()});
    deltas.push_back(s.poll());
    return deltas;
  };
  const auto da = drive(original);
  const auto db = drive(*restored);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].now_ps, db[i].now_ps);
    ASSERT_EQ(da[i].instants.size(), db[i].instants.size());
    for (std::size_t j = 0; j < da[i].instants.size(); ++j) {
      EXPECT_EQ(da[i].instants[j].series, db[i].instants[j].series);
      EXPECT_EQ(da[i].instants[j].start_k, db[i].instants[j].start_k);
      EXPECT_EQ(da[i].instants[j].instants_ps, db[i].instants[j].instants_ps);
    }
  }
  EXPECT_TRUE(original.completed());
  EXPECT_TRUE(restored->completed());

  const OneShot ref(cfg);
  expect_matches_one_shot(original, ref);
  expect_matches_one_shot(*restored, ref);
}

TEST(SessionTest, RestoreRejectsTamperedCheckpoint) {
  const gen::DidacticConfig cfg = small_didactic();
  const std::vector<serve::Session::FedToken> tokens = didactic_tokens(cfg);
  serve::Session session(streamified_didactic(cfg));
  session.feed(0, {tokens.begin(), tokens.begin() + 4});
  (void)session.poll();

  const JsonValue doc = json_parse(session.checkpoint());
  auto members = doc.members();
  members["now_ps"] = JsonValue::integer(members.at("now_ps").as_int64() + 1);
  EXPECT_THROW(
      (void)serve::Session::restore(json_dump(JsonValue::object(members))),
      serve::SessionError);
}

TEST(SessionTest, CheckpointRefusesWhileGuardStopped) {
  serve::Session::Options opts;
  opts.guards.max_events = 1;  // trips immediately
  const gen::DidacticConfig cfg = small_didactic();
  serve::Session session(streamified_didactic(cfg), opts);
  session.feed(0, didactic_tokens(cfg));
  const serve::Session::Delta d = session.poll();
  EXPECT_TRUE(sim::is_guard_stop(d.stop));
  EXPECT_THROW((void)session.checkpoint(), serve::SessionError);
}

TEST(SessionTest, SessionsShareACompileCache) {
  serve::ProgramCache cache(4);
  serve::Session::Options opts;
  opts.compiled = &cache;
  const std::string scenario = streamified_didactic(small_didactic());
  serve::Session a(scenario, opts);
  serve::Session b(scenario, opts);
  const auto stats = cache.stats();
  // Two sessions parse the same text into distinct descriptions: pointer
  // identity keeps them separate entries (the behavioural-sharing rule).
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 2u);
}

// ----------------------------------------------------------- protocol ----

TEST(ProtocolTest, ServesFeedPollCheckpointRestoreClose) {
  serve::Server server;
  const std::string scenario = streamified_didactic(small_didactic());
  const std::vector<serve::Session::FedToken> tokens =
      didactic_tokens(small_didactic());

  auto request = [&](const std::string& line) {
    return json_parse(server.handle(line));
  };
  auto feed_line = [&](std::size_t lo, std::size_t hi) {
    JsonWriter w;
    w.begin_object()
        .field("cmd", "feed")
        .field("session", "s")
        .field("source", std::uint64_t{0});
    w.key("tokens").begin_array();
    for (std::size_t k = lo; k < hi; ++k) {
      w.begin_object().field("earliest_ps", tokens[k].earliest_ps);
      w.key("attrs").begin_object().field("size", tokens[k].attrs.size);
      w.key("params").begin_array();
      for (const double p : tokens[k].attrs.params) w.value(p);
      w.end_array().end_object().end_object();
    }
    w.end_array().end_object();
    return w.str();
  };

  JsonWriter submit;
  submit.begin_object()
      .field("cmd", "submit")
      .field("session", "s")
      .field("scenario_json", scenario)
      .end_object();
  const JsonValue sub = request(submit.str());
  ASSERT_TRUE(sub.at("ok").as_bool()) << server.handle(submit.str());
  ASSERT_EQ(sub.at("stream_sources").size(), 1u);

  ASSERT_TRUE(request(feed_line(0, 5)).at("ok").as_bool());
  ASSERT_TRUE(request(R"({"cmd":"poll","session":"s"})").at("ok").as_bool());

  const JsonValue ckpt = request(R"({"cmd":"checkpoint","session":"s"})");
  ASSERT_TRUE(ckpt.at("ok").as_bool());
  ASSERT_TRUE(request(R"({"cmd":"close","session":"s"})").at("ok").as_bool());
  EXPECT_EQ(server.session_count(), 0u);

  JsonWriter restore;
  restore.begin_object()
      .field("cmd", "restore")
      .field("session", "s")
      .field("checkpoint", ckpt.at("checkpoint").as_string())
      .end_object();
  ASSERT_TRUE(request(restore.str()).at("ok").as_bool());

  ASSERT_TRUE(request(feed_line(5, tokens.size())).at("ok").as_bool());
  const JsonValue last = request(R"({"cmd":"poll","session":"s"})");
  ASSERT_TRUE(last.at("ok").as_bool());
  EXPECT_TRUE(last.at("completed").as_bool());

  const JsonValue stats = request(R"({"cmd":"stats"})");
  EXPECT_EQ(stats.at("sessions").as_uint64(), 1u);
  EXPECT_GE(stats.at("cache").at("misses").as_uint64(), 1u);
}

TEST(ProtocolTest, ErrorsAreReportedInBandNeverThrown) {
  serve::Server server;
  EXPECT_FALSE(json_parse(server.handle("not json")).at("ok").as_bool());
  EXPECT_FALSE(json_parse(server.handle(R"({"cmd":"frobnicate","session":"x"})"))
                   .at("ok")
                   .as_bool());
  EXPECT_FALSE(json_parse(server.handle(R"({"cmd":"poll","session":"nope"})"))
                   .at("ok")
                   .as_bool());
  EXPECT_EQ(server.session_count(), 0u);
}

// ------------------------------------------------- study integration ----

TEST(StudyCacheTest, RepetitionsHitTheSharedCache) {
  gen::DidacticConfig cfg;
  cfg.tokens = 5;
  study::Study st;
  st.add(study::Scenario("didactic", gen::make_didactic(cfg)));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());
  study::StudyOptions opts;
  opts.repetitions = 3;
  const study::Report rep = st.run(opts);
  const study::Cell& eq = rep.at("didactic", "equivalent");
  // Rep 0 compiles, reps 1..2 reuse the artifact.
  EXPECT_EQ(eq.cache_misses, 1);
  EXPECT_EQ(eq.cache_hits, 2);
  EXPECT_EQ(rep.at("didactic", "baseline").cache_hits, 0);
}

TEST(StudyCacheTest, SharedDescriptionsHitAcrossScenarios) {
  gen::DidacticConfig cfg;
  cfg.tokens = 5;
  const model::DescPtr desc = model::share(gen::make_didactic(cfg));
  study::Study st;
  st.add(study::Scenario("a", desc));
  st.add(study::Scenario("b", desc));  // same DescPtr: shareable
  st.add(study::Backend::equivalent());
  const study::Report rep = st.run();
  EXPECT_EQ(rep.at("a", "equivalent").cache_misses, 1);
  EXPECT_EQ(rep.at("b", "equivalent").cache_misses, 0);
  EXPECT_EQ(rep.at("b", "equivalent").cache_hits, 1);
}

TEST(StudyCacheTest, CacheOffLeavesSentinels) {
  gen::DidacticConfig cfg;
  cfg.tokens = 5;
  study::Study st;
  st.add(study::Scenario("didactic", gen::make_didactic(cfg)));
  st.add(study::Backend::equivalent());
  study::StudyOptions opts;
  opts.program_cache = false;
  const study::Report rep = st.run(opts);
  EXPECT_EQ(rep.at("didactic", "equivalent").cache_hits, -1);
  EXPECT_EQ(rep.at("didactic", "equivalent").cache_misses, -1);
}

TEST(StudyCacheTest, ReportsAreIdenticalAtEveryThreadCount) {
  gen::DidacticConfig cfg;
  cfg.tokens = 5;
  auto run_at = [&](int threads) {
    study::Study st;
    st.add(study::Scenario("didactic", gen::make_didactic(cfg)));
    st.add(study::Backend::baseline());
    st.add(study::Backend::equivalent());
    study::StudyOptions opts;
    opts.threads = threads;
    study::Report rep = st.run(opts);
    for (study::Cell& c : rep.cells) {
      c.metrics.wall_seconds = 0.0;
      c.speedup_vs_reference = c.is_reference ? 1.0 : 0.0;
    }
    return rep.to_json();
  };
  EXPECT_EQ(run_at(1), run_at(4));
}

}  // namespace
