#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batch_equivalent_model.hpp"
#include "core/equivalent_model.hpp"
#include "gen/didactic.hpp"
#include "gen/random_arch.hpp"
#include "lte/receiver.hpp"
#include "model/baseline.hpp"
#include "study/study.hpp"
#include "util/error.hpp"

/// The batched multi-instance path (docs/DESIGN.md §9): composed scenarios
/// whose instances share one description run through tdg::BatchEngine —
/// one compiled program, one shared frame arena, iteration fronts drained
/// at timestep boundaries. The property under test is the paper's accuracy
/// claim lifted to the batch: every instance's traces stay bit-identical
/// to its solo run (and to the isolated merged-graph path), across random
/// architectures, multi-rate producer bundles, and the LTE case study.

namespace maxev::study {
namespace {

using namespace maxev::literals;

/// N same-description instances composed into one scenario. Shares ONE
/// DescPtr, so the result is batch-eligible.
Scenario compose_clones(const model::DescPtr& desc, std::size_t n,
                        std::vector<bool> group = {}) {
  std::vector<Scenario> parts;
  for (std::size_t i = 0; i < n; ++i) {
    Scenario s("inst" + std::to_string(i), desc);
    if (!group.empty()) s.with_group(group);
    parts.push_back(std::move(s));
  }
  return compose("clones", parts);
}

/// Every instance of the composed run must match the solo run of the
/// shared description bit for bit (instants in order; usage as sorted
/// multisets, the suite-wide usage comparison convention).
void expect_clones_match_solo(const Scenario& composed,
                              const model::DescPtr& desc,
                              std::vector<bool> group = {},
                              const char* context = "") {
  RunConfig rc;  // batch_composed defaults to true
  auto whole = Backend::equivalent().instantiate(composed, rc);
  ASSERT_TRUE(whole->run().completed) << context;

  Scenario solo_scenario("solo", desc);
  if (!group.empty()) solo_scenario.with_group(std::move(group));
  auto solo = Backend::equivalent().instantiate(solo_scenario);
  ASSERT_TRUE(solo->run().completed) << context;

  trace::UsageTraceSet solo_usage = solo->usage();
  solo_usage.sort_all();
  for (const Instance& inst : composed.instances()) {
    const trace::InstantTraceSet extracted =
        instance_instants(whole->instants(), inst.name);
    EXPECT_EQ(trace::compare_instants(solo->instants(), extracted),
              std::nullopt)
        << context << " " << inst.name;
    EXPECT_EQ(trace::compare_instants(extracted, solo->instants()),
              std::nullopt)
        << context << " " << inst.name;

    trace::UsageTraceSet extracted_usage =
        instance_usage(whole->usage(), inst.name);
    extracted_usage.sort_all();
    EXPECT_EQ(trace::compare_usage(solo_usage, extracted_usage), std::nullopt)
        << context << " " << inst.name;
  }
}

/// The batched and the isolated (merged-graph) composed runs must produce
/// identical full trace sets and identical completion times.
void expect_batched_matches_isolated(const Scenario& composed,
                                     const char* context = "") {
  RunConfig batched_rc;
  RunConfig isolated_rc;
  isolated_rc.batch_composed = false;
  auto batched = Backend::equivalent().instantiate(composed, batched_rc);
  auto isolated = Backend::equivalent().instantiate(composed, isolated_rc);
  ASSERT_TRUE(batched->run().completed) << context;
  ASSERT_TRUE(isolated->run().completed) << context;

  EXPECT_EQ(trace::compare_instants(isolated->instants(), batched->instants()),
            std::nullopt)
      << context;
  EXPECT_EQ(trace::compare_instants(batched->instants(), isolated->instants()),
            std::nullopt)
      << context;
  trace::UsageTraceSet a = isolated->usage();
  trace::UsageTraceSet b = batched->usage();
  a.sort_all();
  b.sort_all();
  EXPECT_EQ(trace::compare_usage(a, b), std::nullopt) << context;
  EXPECT_EQ(batched->end_time(), isolated->end_time()) << context;
  EXPECT_EQ(batched->relation_events(), isolated->relation_events()) << context;
  // Same computation, counted per (node, iteration, instance) either way.
  EXPECT_EQ(batched->instances_computed(), isolated->instances_computed())
      << context;
}

// ------------------------------------------------------------ Eligibility

TEST(BatchEligibilityTest, SharedDescriptionIsBatchable) {
  const auto desc = model::share(gen::make_didactic({}));
  const Scenario c = compose_clones(desc, 3);
  EXPECT_TRUE(c.batchable());
  EXPECT_EQ(c.batch_base(), desc);
}

TEST(BatchEligibilityTest, DistinctDescriptionsAreNot) {
  std::vector<Scenario> parts;
  parts.emplace_back("a", gen::make_didactic({}));
  parts.emplace_back("b", gen::make_didactic({}));  // equal but not shared
  EXPECT_FALSE(compose("pair", parts).batchable());
}

TEST(BatchEligibilityTest, DisagreeingGroupsAreNot) {
  const auto desc = model::share(gen::make_didactic({}));
  std::vector<Scenario> parts;
  parts.emplace_back("a", desc);
  Scenario b("b", desc);
  std::vector<bool> group(desc->functions().size(), false);
  group[0] = group[1] = true;
  b.with_group(group);
  parts.push_back(b);
  EXPECT_FALSE(compose("mixed", parts).batchable());

  // The same restriction on every instance keeps the batch eligible.
  std::vector<Scenario> uniform;
  uniform.push_back(Scenario("a", desc).with_group(group));
  uniform.push_back(Scenario("b", desc).with_group(group));
  EXPECT_TRUE(compose("uniform", uniform).batchable());
}

TEST(BatchEligibilityTest, PlainScenarioIsNot) {
  EXPECT_FALSE(Scenario("solo", gen::make_didactic({})).batchable());
}

// A batched model compiles the base program once: the reported graph shape
// is the per-instance graph, not the N-fold merged one.
TEST(BatchEligibilityTest, BatchedModelCompilesTheBaseProgram) {
  const auto desc = model::share(gen::make_didactic({}));
  const Scenario composed = compose_clones(desc, 4);

  auto solo = Backend::equivalent().instantiate(Scenario("solo", desc));
  auto batched = Backend::equivalent().instantiate(composed);
  RunConfig off;
  off.batch_composed = false;
  auto isolated = Backend::equivalent().instantiate(composed, off);

  EXPECT_EQ(batched->graph_shape().nodes, solo->graph_shape().nodes);
  EXPECT_EQ(isolated->graph_shape().nodes, 4 * solo->graph_shape().nodes);
}

// ------------------------------------------------- Bit-identical instants

TEST(BatchIdentityTest, DidacticClonesMatchSolo) {
  gen::DidacticConfig cfg;
  cfg.tokens = 60;
  const auto desc = model::share(gen::make_didactic(cfg));
  for (std::size_t n : {2u, 3u, 8u}) {
    const Scenario composed = compose_clones(desc, n);
    ASSERT_TRUE(composed.batchable());
    expect_clones_match_solo(composed, desc, {},
                             ("didactic x" + std::to_string(n)).c_str());
  }
}

TEST(BatchIdentityTest, DidacticClonesMatchIsolatedAndBaseline) {
  gen::DidacticConfig cfg;
  cfg.tokens = 40;
  const auto desc = model::share(gen::make_didactic(cfg));
  const Scenario composed = compose_clones(desc, 5);
  expect_batched_matches_isolated(composed, "didactic x5");

  // And the composed baseline agrees with the batched equivalent model —
  // the paper's accuracy criterion on the whole composed system.
  auto base = Backend::baseline().instantiate(composed);
  auto eq = Backend::equivalent().instantiate(composed);
  ASSERT_TRUE(base->run().completed);
  ASSERT_TRUE(eq->run().completed);
  EXPECT_EQ(trace::compare_instants(base->instants(), eq->instants()),
            std::nullopt);
}

TEST(BatchIdentityTest, PartialGroupClonesMatchSolo) {
  gen::DidacticConfig cfg;
  cfg.tokens = 40;
  const auto desc = model::share(gen::make_didactic(cfg));
  std::vector<bool> group(desc->functions().size(), false);
  group[2] = group[3] = true;  // abstract F3+F4 only; F1/F2 stay simulated
  const Scenario composed = compose_clones(desc, 3, group);
  ASSERT_TRUE(composed.batchable());
  expect_clones_match_solo(composed, desc, group, "partial group x3");
  expect_batched_matches_isolated(composed, "partial group x3");
}

// The property sweep: random feed-forward architectures with FIFOs, slow
// sinks, periodic sources, second sources and multi-rate producer bundles.
TEST(BatchIdentityTest, RandomArchSweep) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 30;
  cfg.multi_rate_producer_probability = 0.4;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto desc =
        model::share(gen::make_random_architecture(seed, cfg));
    const Scenario composed = compose_clones(desc, 4);
    ASSERT_TRUE(composed.batchable());
    const std::string ctx = "random seed " + std::to_string(seed);
    expect_clones_match_solo(composed, desc, {}, ctx.c_str());
    expect_batched_matches_isolated(composed, ctx.c_str());
  }
}

// The acceptance workload: >= 4 LTE receivers (8 here) sharing one
// description, every instance bit-identical to the solo receiver.
TEST(BatchIdentityTest, EightLteReceiversMatchSolo) {
  lte::ReceiverConfig cfg;
  cfg.symbols = 3 * lte::kSymbolsPerSubframe;
  cfg.seed = 77;
  const auto desc = model::share(lte::make_receiver(cfg));
  const Scenario composed = compose_clones(desc, 8);
  ASSERT_TRUE(composed.batchable());
  expect_clones_match_solo(composed, desc, {}, "lte x8");
  expect_batched_matches_isolated(composed, "lte x8");
}

TEST(BatchIdentityTest, DeterministicAcrossRuns) {
  gen::DidacticConfig cfg;
  cfg.tokens = 50;
  const auto desc = model::share(gen::make_didactic(cfg));
  const Scenario composed = compose_clones(desc, 4);
  auto r1 = Backend::equivalent().instantiate(composed);
  auto r2 = Backend::equivalent().instantiate(composed);
  ASSERT_TRUE(r1->run().completed);
  ASSERT_TRUE(r2->run().completed);
  EXPECT_EQ(trace::compare_instants(r1->instants(), r2->instants()),
            std::nullopt);
  EXPECT_EQ(r1->kernel_stats().events_scheduled,
            r2->kernel_stats().events_scheduled);
  EXPECT_EQ(r1->end_time(), r2->end_time());
}

TEST(BatchIdentityTest, ObserveOffRecordsNothing) {
  const auto desc = model::share(gen::make_didactic({}));
  const Scenario composed = compose_clones(desc, 3);
  RunConfig rc;
  rc.observe = false;
  auto m = Backend::equivalent().instantiate(composed, rc);
  ASSERT_TRUE(m->run().completed);
  EXPECT_EQ(m->instants().total_instants(), 0u);
  EXPECT_EQ(m->usage().all().size(), 0u);
}

TEST(BatchIdentityTest, HorizonCutAndResume) {
  gen::DidacticConfig cfg;
  cfg.tokens = 200;
  const auto desc = model::share(gen::make_didactic(cfg));
  const Scenario composed = compose_clones(desc, 3);
  auto m = Backend::equivalent().instantiate(composed);
  const Outcome cut = m->run(TimePoint::origin() + 50_us);
  EXPECT_FALSE(cut.completed);
  EXPECT_TRUE(m->run().completed);  // same resume contract as every backend
}

// ---------------------------------------------------- Engine front widths

// Identically-configured instances move in lock step: fronts collect the
// whole batch, so computed / fronts approaches the batch width.
TEST(BatchEngineTest, LockSteppedClonesFormWideFronts) {
  gen::DidacticConfig cfg;
  cfg.tokens = 50;
  const auto base = model::share(gen::make_didactic(cfg));
  std::vector<Scenario> parts;
  for (int i = 0; i < 8; ++i)
    parts.emplace_back("i" + std::to_string(i), base);
  const Scenario composed = compose("c8", parts);

  std::vector<std::string> names;
  for (const Instance& inst : composed.instances()) names.push_back(inst.name);
  core::BatchEquivalentModel m(composed.desc_ptr(), composed.batch_base(),
                               names, {});
  ASSERT_TRUE(m.run().completed);
  ASSERT_GT(m.engine().fronts_drained(), 0u);
  const double width =
      static_cast<double>(m.engine().instances_computed()) /
      static_cast<double>(m.engine().fronts_drained());
  EXPECT_GT(width, 4.0);  // near 8 in practice; > 4 guards the mechanism
  EXPECT_EQ(m.engine().width(), 8u);
}

// ------------------------------------------- Heterogeneous sub-batches

/// Per-instance traces of a mixed composition must match each instance's
/// solo run of ITS OWN description bit for bit (docs/DESIGN.md §10).
void expect_instances_match_their_solos(
    const Scenario& composed,
    const std::vector<model::DescPtr>& descs_by_instance,
    const char* context = "") {
  RunConfig rc;  // batch_composed defaults to true
  auto whole = Backend::equivalent().instantiate(composed, rc);
  ASSERT_TRUE(whole->run().completed) << context;

  for (std::size_t i = 0; i < composed.instances().size(); ++i) {
    const Instance& inst = composed.instances()[i];
    auto solo =
        Backend::equivalent().instantiate(Scenario("solo", descs_by_instance[i]));
    ASSERT_TRUE(solo->run().completed) << context << " " << inst.name;

    const trace::InstantTraceSet extracted =
        instance_instants(whole->instants(), inst.name);
    EXPECT_EQ(trace::compare_instants(solo->instants(), extracted),
              std::nullopt)
        << context << " " << inst.name;
    EXPECT_EQ(trace::compare_instants(extracted, solo->instants()),
              std::nullopt)
        << context << " " << inst.name;

    trace::UsageTraceSet solo_usage = solo->usage();
    solo_usage.sort_all();
    trace::UsageTraceSet extracted_usage =
        instance_usage(whole->usage(), inst.name);
    extracted_usage.sort_all();
    EXPECT_EQ(trace::compare_usage(solo_usage, extracted_usage), std::nullopt)
        << context << " " << inst.name;
  }
}

TEST(HeterogeneousBatchTest, MixedCompositionFormsSubBatches) {
  gen::DidacticConfig ca;
  ca.tokens = 30;
  gen::DidacticConfig cb;
  cb.tokens = 45;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));
  const auto c = model::share(gen::make_didactic({}));

  // Interleaved on purpose: sub-batch members must not need contiguous
  // merged-table blocks (per-instance spans, not N-fold strides).
  std::vector<Scenario> parts;
  parts.emplace_back("a0", a);
  parts.emplace_back("b0", b);
  parts.emplace_back("a1", a);
  parts.emplace_back("b1", b);
  parts.emplace_back("c0", c);  // singleton: isolated remainder
  parts.emplace_back("a2", a);
  const Scenario mixed = compose("mixed", parts);

  EXPECT_FALSE(mixed.batchable());  // not ONE equal-structure batch
  EXPECT_TRUE(mixed.partially_batchable());
  ASSERT_EQ(mixed.batch_groups().size(), 2u);
  EXPECT_EQ(mixed.batch_groups()[0].base, a);
  EXPECT_EQ(mixed.batch_groups()[0].members,
            (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_EQ(mixed.batch_groups()[1].base, b);
  EXPECT_EQ(mixed.batch_groups()[1].members, (std::vector<std::size_t>{1, 3}));
}

TEST(HeterogeneousBatchTest, EmptyAndExplicitAllTrueGroupsShareASubBatch) {
  // "Abstract everything" can be spelled as an empty group or as explicit
  // all-true flags; the sub-batch key normalizes, so both spellings of the
  // same request batch together.
  const auto desc = model::share(gen::make_didactic({}));
  std::vector<Scenario> parts;
  parts.emplace_back("a", desc);  // empty group
  Scenario b("b", desc);
  b.with_group(std::vector<bool>(desc->functions().size(), true));
  parts.push_back(std::move(b));
  const Scenario c = compose("norm", parts);
  ASSERT_EQ(c.batch_groups().size(), 1u);
  EXPECT_EQ(c.batch_groups()[0].members.size(), 2u);
  EXPECT_TRUE(c.batchable());
}

TEST(HeterogeneousBatchTest, EqualButDistinctDescriptionsStaySeparate) {
  // Structurally equal, but distinct objects: the opaque workloads cannot
  // be proven identical, so no sub-batch forms (docs/DESIGN.md §10).
  const auto a = model::share(gen::make_didactic({}));
  const auto b = model::share(gen::make_didactic({}));
  ASSERT_TRUE(model::structurally_equal(*a, *b));
  ASSERT_EQ(model::structural_hash(*a), model::structural_hash(*b));
  std::vector<Scenario> parts;
  parts.emplace_back("a0", a);
  parts.emplace_back("b0", b);
  const Scenario pair = compose("pair", parts);
  EXPECT_FALSE(pair.partially_batchable());
}

TEST(HeterogeneousBatchTest, MixedDidacticMatchesSolosAndIsolated) {
  gen::DidacticConfig ca;
  ca.tokens = 40;
  gen::DidacticConfig cb;
  cb.tokens = 25;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));

  std::vector<Scenario> parts;
  std::vector<model::DescPtr> descs;
  for (const char* n : {"a0", "a1", "a2"}) {
    parts.emplace_back(n, a);
    descs.push_back(a);
  }
  for (const char* n : {"b0", "b1"}) {
    parts.emplace_back(n, b);
    descs.push_back(b);
  }
  const Scenario mixed = compose("mixed32", parts);
  ASSERT_EQ(mixed.batch_groups().size(), 2u);

  expect_instances_match_their_solos(mixed, descs, "mixed didactic 3+2");
  expect_batched_matches_isolated(mixed, "mixed didactic 3+2");
}

TEST(HeterogeneousBatchTest, SubBatchesPlusRemainderMatchIsolated) {
  // Two sub-batches AND a genuine remainder (a singleton, which runs on
  // the merged inline engine) in one kernel.
  gen::DidacticConfig ca;
  ca.tokens = 35;
  gen::DidacticConfig cb;
  cb.tokens = 20;
  gen::DidacticConfig cc;
  cc.tokens = 15;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));
  const auto c = model::share(gen::make_didactic(cc));

  std::vector<Scenario> parts;
  std::vector<model::DescPtr> descs;
  parts.emplace_back("a0", a);
  descs.push_back(a);
  parts.emplace_back("c0", c);
  descs.push_back(c);
  parts.emplace_back("b0", b);
  descs.push_back(b);
  parts.emplace_back("a1", a);
  descs.push_back(a);
  parts.emplace_back("b1", b);
  descs.push_back(b);
  const Scenario mixed = compose("mixed221", parts);
  ASSERT_EQ(mixed.batch_groups().size(), 2u);

  expect_instances_match_their_solos(mixed, descs, "2+2+1 remainder");
  expect_batched_matches_isolated(mixed, "2+2+1 remainder");
}

TEST(HeterogeneousBatchTest, RandomArchPairsMatchSolos) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 25;
  cfg.multi_rate_producer_probability = 0.4;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto a =
        model::share(gen::make_random_architecture(seed, cfg));
    const auto b =
        model::share(gen::make_random_architecture(seed + 100, cfg));
    std::vector<Scenario> parts;
    std::vector<model::DescPtr> descs;
    parts.emplace_back("a0", a);
    descs.push_back(a);
    parts.emplace_back("b0", b);
    descs.push_back(b);
    parts.emplace_back("a1", a);
    descs.push_back(a);
    parts.emplace_back("b1", b);
    descs.push_back(b);
    const Scenario mixed = compose("rmix", parts);
    const std::string ctx = "random pair seed " + std::to_string(seed);
    expect_instances_match_their_solos(mixed, descs, ctx.c_str());
    expect_batched_matches_isolated(mixed, ctx.c_str());
  }
}

// The acceptance workload: 4+4 LTE receivers of two carrier variants
// (different parameters, hence different workloads) in one kernel, every
// equal-structure quad on its own shared program.
TEST(HeterogeneousBatchTest, FourPlusFourLteVariantsMatchSolos) {
  lte::ReceiverConfig c1;
  c1.symbols = 2 * lte::kSymbolsPerSubframe;
  c1.seed = 7;
  lte::ReceiverConfig c2;
  c2.symbols = 3 * lte::kSymbolsPerSubframe;
  c2.seed = 8;
  c2.dsp_ops_per_second = 9e9;  // a differently-sized platform
  const auto rx1 = model::share(lte::make_receiver(c1));
  const auto rx2 = model::share(lte::make_receiver(c2));

  std::vector<Scenario> parts;
  std::vector<model::DescPtr> descs;
  for (int i = 0; i < 4; ++i) {
    parts.emplace_back("cc0rx" + std::to_string(i), rx1);
    descs.push_back(rx1);
    parts.emplace_back("cc1rx" + std::to_string(i), rx2);
    descs.push_back(rx2);
  }
  const Scenario mixed = compose("ca44", parts);
  ASSERT_FALSE(mixed.batchable());
  ASSERT_EQ(mixed.batch_groups().size(), 2u);
  ASSERT_EQ(mixed.batch_groups()[0].members.size(), 4u);
  ASSERT_EQ(mixed.batch_groups()[1].members.size(), 4u);

  expect_instances_match_their_solos(mixed, descs, "lte 4+4");
  expect_batched_matches_isolated(mixed, "lte 4+4");
}

TEST(HeterogeneousBatchTest, MixedDeterministicAcrossRuns) {
  gen::DidacticConfig ca;
  ca.tokens = 40;
  gen::DidacticConfig cb;
  cb.tokens = 30;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));
  std::vector<Scenario> parts;
  parts.emplace_back("a0", a);
  parts.emplace_back("a1", a);
  parts.emplace_back("b0", b);
  parts.emplace_back("b1", b);
  const Scenario mixed = compose("dmix", parts);

  auto r1 = Backend::equivalent().instantiate(mixed);
  auto r2 = Backend::equivalent().instantiate(mixed);
  ASSERT_TRUE(r1->run().completed);
  ASSERT_TRUE(r2->run().completed);
  EXPECT_EQ(trace::compare_instants(r1->instants(), r2->instants()),
            std::nullopt);
  EXPECT_EQ(r1->kernel_stats().events_scheduled,
            r2->kernel_stats().events_scheduled);
  EXPECT_EQ(r1->kernel_stats().inline_resumes,
            r2->kernel_stats().inline_resumes);
  EXPECT_EQ(r1->end_time(), r2->end_time());
}

TEST(HeterogeneousBatchTest, MixedHorizonCutAndResume) {
  gen::DidacticConfig ca;
  ca.tokens = 150;
  gen::DidacticConfig cb;
  cb.tokens = 200;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));
  std::vector<Scenario> parts;
  parts.emplace_back("a0", a);
  parts.emplace_back("a1", a);
  parts.emplace_back("b0", b);
  parts.emplace_back("b1", b);
  const Scenario mixed = compose("hmix", parts);
  auto m = Backend::equivalent().instantiate(mixed);
  const Outcome cut = m->run(TimePoint::origin() + 50_us);
  EXPECT_FALSE(cut.completed);
  EXPECT_TRUE(m->run().completed);  // same resume contract as every backend

  // The resumed run's traces still match a one-shot run of the same
  // scenario (the cut is invisible in the observables).
  auto whole = Backend::equivalent().instantiate(mixed);
  ASSERT_TRUE(whole->run().completed);
  EXPECT_EQ(trace::compare_instants(whole->instants(), m->instants()),
            std::nullopt);
}

TEST(HeterogeneousBatchTest, PerGroupPadRunsEqualWorkAcrossLegs) {
  // pad_nodes is per instance on every leg: the grouped path pads each
  // sub-batch base (evaluated per member) and the remainder per leftover
  // instance, the isolated path pads the merged graph N-fold. Padding is
  // semantically inert, so traces agree; this pins the accounting wiring.
  gen::DidacticConfig ca;
  ca.tokens = 25;
  gen::DidacticConfig cb;
  cb.tokens = 15;
  gen::DidacticConfig cc;
  cc.tokens = 10;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));
  const auto c = model::share(gen::make_didactic(cc));
  constexpr std::size_t kPad = 24;
  std::vector<Scenario> parts;
  for (const char* n : {"a0", "a1"})
    parts.push_back(Scenario(n, a).with_pad_nodes(kPad));
  for (const char* n : {"b0", "b1"})
    parts.push_back(Scenario(n, b).with_pad_nodes(kPad));
  parts.push_back(Scenario("c0", c).with_pad_nodes(kPad));  // remainder
  const Scenario mixed = compose("pmix", parts);
  ASSERT_EQ(mixed.batch_groups().size(), 2u);

  RunConfig batched_rc;
  RunConfig isolated_rc;
  isolated_rc.batch_composed = false;
  auto batched = Backend::equivalent().instantiate(mixed, batched_rc);
  auto isolated = Backend::equivalent().instantiate(mixed, isolated_rc);
  ASSERT_TRUE(batched->run().completed);
  ASSERT_TRUE(isolated->run().completed);
  EXPECT_EQ(trace::compare_instants(isolated->instants(), batched->instants()),
            std::nullopt);
  EXPECT_EQ(batched->end_time(), isolated->end_time());

  // Node accounting: the didactic graph has one per-instance shape S
  // whatever the token count, so the grouped legs compile
  // (S + pad) + (S + pad) + (S + pad)   [two group bases + the remainder]
  // while the isolated leg compiles 5 instances and pads 5-fold.
  auto solo = Backend::equivalent().instantiate(Scenario("solo", a));
  const std::size_t s_nodes = solo->graph_shape().nodes;
  EXPECT_EQ(batched->graph_shape().nodes, 3 * (s_nodes + kPad));
  EXPECT_EQ(isolated->graph_shape().nodes, 5 * s_nodes + 5 * kPad);
}

// The inline-resume fast path: gated inputs whose completion is already
// computable are answered synchronously at the offer (BatchEngine::
// resolve_now), so the batched run schedules no more kernel events than
// the merged path, which always answers inline — the per-token queued-
// resume gap of the deferred engine is closed.
TEST(HeterogeneousBatchTest, InlineResumeClosesTheKernelEventGap) {
  gen::DidacticConfig cfg;
  cfg.tokens = 60;
  const auto desc = model::share(gen::make_didactic(cfg));
  const Scenario composed = compose_clones(desc, 4);
  RunConfig batched_rc;
  RunConfig isolated_rc;
  isolated_rc.batch_composed = false;
  auto batched = Backend::equivalent().instantiate(composed, batched_rc);
  auto isolated = Backend::equivalent().instantiate(composed, isolated_rc);
  ASSERT_TRUE(batched->run().completed);
  ASSERT_TRUE(isolated->run().completed);
  EXPECT_LE(batched->kernel_stats().events_scheduled,
            isolated->kernel_stats().events_scheduled);
}

// ------------------------------------------------- Vector drain widths

/// The SoA vector drain (tdg/lanes.hpp, docs/DESIGN.md §14) against the
/// per-element mp::Scalar reference loop: identical traces, completion
/// time and every counter, at the given batch width and drain thread
/// count. The width walks vector-friendly lanes (2, 4, 8) and the
/// remainder tails (1, 5, 7) that fall through to the kernels' scalar
/// tail handling.
void expect_vector_matches_reference(const Scenario& composed,
                                     const char* context, int threads = 1) {
  RunConfig ref_rc;
  ref_rc.vector_drain = false;
  RunConfig vec_rc;
  vec_rc.threads = threads;
  auto ref = Backend::equivalent().instantiate(composed, ref_rc);
  auto vec = Backend::equivalent().instantiate(composed, vec_rc);
  ASSERT_TRUE(ref->run().completed) << context;
  ASSERT_TRUE(vec->run().completed) << context;

  EXPECT_EQ(trace::compare_instants(ref->instants(), vec->instants()),
            std::nullopt)
      << context;
  EXPECT_EQ(trace::compare_instants(vec->instants(), ref->instants()),
            std::nullopt)
      << context;
  trace::UsageTraceSet ru = ref->usage();
  trace::UsageTraceSet vu = vec->usage();
  ru.sort_all();
  vu.sort_all();
  EXPECT_EQ(trace::compare_usage(ru, vu), std::nullopt) << context;
  EXPECT_EQ(ref->end_time(), vec->end_time()) << context;
  EXPECT_EQ(ref->relation_events(), vec->relation_events()) << context;
  EXPECT_EQ(ref->instances_computed(), vec->instances_computed()) << context;
  EXPECT_EQ(ref->arc_terms_evaluated(), vec->arc_terms_evaluated()) << context;
  EXPECT_EQ(ref->kernel_stats().events_scheduled,
            vec->kernel_stats().events_scheduled)
      << context;
}

TEST(VectorDrainTest, LaneWidthInvariance) {
  gen::DidacticConfig cfg;
  cfg.tokens = 40;
  const auto desc = model::share(gen::make_didactic(cfg));
  for (const std::size_t n : {1u, 2u, 4u, 5u, 7u, 8u}) {
    const Scenario composed = compose_clones(desc, n);
    const std::string ctx = "didactic width " + std::to_string(n);
    // Against the reference loop at the same width, and — via the solo
    // helper, which runs the default (vector) configuration — against a
    // solo tdg::Engine run of the shared description.
    expect_vector_matches_reference(composed, ctx.c_str());
    expect_clones_match_solo(composed, desc, {}, ctx.c_str());
  }
}

TEST(VectorDrainTest, RandomArchWidths) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 30;
  cfg.multi_rate_producer_probability = 0.4;
  for (const std::uint64_t seed : {3ull, 11ull, 19ull}) {
    const auto desc = model::share(gen::make_random_architecture(seed, cfg));
    for (const std::size_t n : {2u, 5u, 8u}) {
      const Scenario composed = compose_clones(desc, n);
      const std::string ctx =
          "seed " + std::to_string(seed) + " width " + std::to_string(n);
      expect_vector_matches_reference(composed, ctx.c_str());
    }
  }
}

TEST(VectorDrainTest, ComposesWithGroupThreads) {
  // Stacked levers: two equal-structure sub-batches drained by worker
  // threads, each sub-batch's uniform fronts going through the vector
  // kernels. Traces must stay those of the serial reference loop.
  gen::DidacticConfig ca;
  ca.tokens = 40;
  gen::DidacticConfig cb;
  cb.tokens = 30;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));
  std::vector<Scenario> parts;
  for (int i = 0; i < 4; ++i) {
    parts.emplace_back("a" + std::to_string(i), a);
    parts.emplace_back("b" + std::to_string(i), b);
  }
  const Scenario mixed = compose("ab44", parts);
  ASSERT_EQ(mixed.batch_groups().size(), 2u);
  for (const int threads : {2, 8}) {
    const std::string ctx = "ab44 threads " + std::to_string(threads);
    expect_vector_matches_reference(mixed, ctx.c_str(), threads);
  }
}

TEST(BatchEngineTest, MergedDescriptionMismatchRejected) {
  const auto base = model::share(gen::make_didactic({}));
  gen::DidacticConfig other_cfg;
  other_cfg.tokens = 7;
  const auto other = model::share(gen::make_didactic(other_cfg));
  std::vector<Scenario> parts;
  parts.emplace_back("a", base);
  parts.emplace_back("b", base);
  const Scenario composed = compose("c", parts);
  // Wrong base for this merged description: the N-fold check must fire
  // before anything is wired.
  EXPECT_THROW(core::BatchEquivalentModel(composed.desc_ptr(), other,
                                          {"a", "b", "c"}, {}),
               DescriptionError);
  // Same table *sizes* but different content (token counts differ): the
  // structural replication check must still reject the wrong base.
  EXPECT_THROW(
      core::BatchEquivalentModel(composed.desc_ptr(), other, {"a", "b"}, {}),
      DescriptionError);
  // And the right base passes.
  EXPECT_NO_THROW(
      core::BatchEquivalentModel(composed.desc_ptr(), base, {"a", "b"}, {}));
}

}  // namespace
}  // namespace maxev::study
