/// \file bench_fig5.cpp
/// Reproduces Fig. 5 of the paper: "Evaluation of the influence of the
/// computation method complexity on the achieved simulation speed-up".
///
/// One curve per state-vector size |X(k)| in {6, 10, 20, 30}; the x-axis is
/// the node count of the temporal dependency graph, swept by padding the
/// derived graph with pass-through nodes (semantics unchanged, per-iteration
/// computation grows by exactly the pad count). The published shape: a
/// speed-up plateau ("negligible for fewer than 100 nodes"), degradation
/// beyond, and a crossover below 1x ("for more than 1000 nodes complexity
/// ... leads to a slow down").
///
/// Two sweeps are reported:
///  * native: this library's coroutine kernel (~60ns/event) — same shape,
///    knees shifted left because events are three orders of magnitude
///    cheaper than the paper's substrate;
///  * commercial-kernel regime: a synthetic 1us per-event cost applied to
///    both models, which lands the knee and crossover in the paper's
///    decades (~100 / ~1000 nodes).
///
/// Emits fig5_native.csv and fig5_commercial.csv.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/equivalent_model.hpp"
#include "gen/padded.hpp"
#include "model/baseline.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace maxev;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kTokens = 10000;
const std::vector<std::size_t> kXSizes = {6, 10, 20, 30};
const std::vector<std::size_t> kNodeTargets = {0,   20,   50,   100, 200,
                                               500, 1000, 2000, 5000};

double run_baseline(const model::ArchitectureDesc& desc, double overhead_ns) {
  model::ModelRuntime rt(desc, {}, /*observe=*/false);
  if (overhead_ns > 0) {
    rt.kernel().set_synthetic_event_overhead(
        std::chrono::nanoseconds(static_cast<std::int64_t>(overhead_ns)));
  }
  const auto t0 = Clock::now();
  (void)rt.run();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double run_equivalent(const model::ArchitectureDesc& desc,
                      std::size_t pad_nodes, double overhead_ns,
                      std::size_t* nodes_out) {
  core::EquivalentModel::Options opts;
  opts.pad_nodes = pad_nodes;
  opts.observe = false;
  core::EquivalentModel eq(desc, {}, opts);
  if (overhead_ns > 0) {
    eq.runtime().kernel().set_synthetic_event_overhead(
        std::chrono::nanoseconds(static_cast<std::int64_t>(overhead_ns)));
  }
  if (nodes_out != nullptr) *nodes_out = eq.graph().node_count();
  const auto t0 = Clock::now();
  (void)eq.run();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void sweep(const char* title, double overhead_ns, const char* csv_path) {
  std::printf("%s\n", title);

  std::vector<model::ArchitectureDesc> descs;
  std::vector<double> baseline_secs;
  for (std::size_t x : kXSizes) {
    gen::PipelineConfig cfg;
    cfg.x_size = x;
    cfg.tokens = kTokens;
    descs.push_back(gen::make_pipeline(cfg));
    baseline_secs.push_back(run_baseline(descs.back(), overhead_ns));
  }

  ConsoleTable table({"nodes", "X=6", "X=10", "X=20", "X=30"});
  CsvWriter csv(csv_path, {"nodes", "speedup_x6", "speedup_x10",
                           "speedup_x20", "speedup_x30"});
  for (std::size_t target : kNodeTargets) {
    std::vector<std::string> row;
    std::vector<double> csv_row;
    for (std::size_t xi = 0; xi < kXSizes.size(); ++xi) {
      const std::size_t base_nodes = kXSizes[xi] + 1;
      const std::size_t pad = target > base_nodes ? target - base_nodes : 0;
      std::size_t nodes = 0;
      const double secs = run_equivalent(descs[xi], pad, overhead_ns, &nodes);
      const double speedup = baseline_secs[xi] / secs;
      if (row.empty()) {
        row.push_back(format("%zu", nodes));
        csv_row.push_back(static_cast<double>(nodes));
      }
      row.push_back(format("%.2f", speedup));
      csv_row.push_back(speedup);
    }
    table.add_row(row);
    csv.row_numeric(csv_row);
  }
  std::printf("%s  -> %s\n\n", table.render().c_str(), csv_path);
}

}  // namespace

int main() {
  std::printf("Fig. 5 reproduction: speed-up vs TDG node count, %s tokens\n\n",
              with_commas(static_cast<std::int64_t>(kTokens)).c_str());
  sweep("native kernel (~60ns/event):", 0.0, "fig5_native.csv");
  sweep("commercial-kernel regime (synthetic 1us/event):", 1000.0,
        "fig5_commercial.csv");
  std::printf(
      "shape check: plateau, then degradation, then crossover below 1x;\n"
      "larger |X| (more events saved) sustains the plateau longer. In the\n"
      "commercial regime the knee (~100) and crossover (~1000) match the\n"
      "paper's decades.\n");
  return 0;
}
