/// \file bench_table1.cpp
/// Reproduces Table I of the paper: "Measurement of achieved simulation
/// speed-up on distinct architecture models".
///
/// Examples 1..4 are chains of 1..4 didactic blocks, each simulated with
/// 20000 data tokens of varying size through the input relation, exactly as
/// in Section IV. The four chains are the scenarios of one study::Study,
/// run against the baseline (reference) and equivalent backends — once with
/// observation on (accuracy-checked) and once off (pure simulation speed).
/// For every example we report the baseline model execution time, the event
/// ratio, the achieved speed-up and the node count of the temporal
/// dependency graph, and we assert the accuracy property (instant and usage
/// traces identical).
///
/// Paper reference values (Intel CoFluent Studio on a 2.2 GHz Core2 Duo):
///   exec time 22 / 41.2 / 59.4 / 80.2 s; event ratio 2.33 / 4.66 / 7 / 9.33;
///   speed-up 2.27 / 4.47 / 6.38 / 8.35; nodes 10 / 19 / 28 / 37.
/// Absolute times differ on this substrate; the monotone scaling of ratio
/// and speed-up with the block count is the reproduced shape.

#include <cstdio>

#include "gen/chains.hpp"
#include "study/study.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;

  constexpr std::uint64_t kTokens = 20000;
  std::printf("Table I reproduction: %s tokens per model, median of 3 runs\n\n",
              with_commas(static_cast<std::int64_t>(kTokens)).c_str());

  study::Study st;
  for (std::size_t ex = 1; ex <= 4; ++ex) {
    st.add(study::Scenario(format("Example %zu", ex),
                           gen::make_table1_example(ex, kTokens)));
  }
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());

  // Accuracy-checked run (observation traces recorded and compared).
  study::StudyOptions checked;
  checked.repetitions = 3;
  const study::Report obs = st.run(checked);
  // Pure simulation-speed run (no observation recording, as a plain
  // what-is-the-simulation-time measurement).
  study::StudyOptions speed = checked;
  speed.observe = false;
  const study::Report fast = st.run(speed);

  ConsoleTable table({"Architecture model", "exec time (s)", "Event ratio",
                      "Kernel-event ratio", "Speed-up", "Speed-up (obs. on)",
                      "Nodes (paper conv.)", "Accurate"});

  static const double kPaperSpeedup[] = {2.27, 4.47, 6.38, 8.35};
  static const double kPaperRatio[] = {2.33, 4.66, 7.0, 9.33};

  for (std::size_t ex = 1; ex <= 4; ++ex) {
    const std::string scenario = format("Example %zu", ex);
    const study::Cell& base_fast = fast.at(scenario, "baseline");
    const study::Cell& eq_fast = fast.at(scenario, "equivalent");
    const study::Cell& eq_obs = obs.at(scenario, "equivalent");
    const bool accurate =
        eq_obs.errors.has_value() && eq_obs.errors->exact();

    table.add_row({scenario,
                   format("%.3f", base_fast.metrics.wall_seconds),
                   format("%.2f", eq_obs.event_ratio_vs_reference),
                   format("%.2f", eq_obs.kernel_event_ratio_vs_reference),
                   format("%.2f", eq_fast.speedup_vs_reference),
                   format("%.2f", eq_obs.speedup_vs_reference),
                   format("%zu", eq_obs.graph_paper_nodes),
                   accurate ? "yes" : "NO"});
    std::printf("Example %zu: paper speed-up %.2f (event ratio %.2f) -> "
                "measured %.2f (%.2f)\n",
                ex, kPaperSpeedup[ex - 1], kPaperRatio[ex - 1],
                eq_fast.speedup_vs_reference,
                eq_obs.event_ratio_vs_reference);
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Note: node counts step by 8 per block here vs the paper's 9 — our\n"
      "chained blocks share the inter-block relation (see docs/EXPERIMENTS.md).\n\n");

  // The paper's substrate (Intel CoFluent Studio / SystemC) pays far more
  // per kernel event than this library's coroutine kernel (~60ns). In the
  // commercial-kernel regime — emulated by a synthetic 2us per-event cost
  // applied to BOTH kernels — the speed-up converges to the event ratio,
  // which is the paper's operating point.
  std::printf("Commercial-kernel regime (synthetic 2us per event, %s tokens):\n",
              with_commas(5000).c_str());
  study::Study heavy_study;
  for (std::size_t ex = 1; ex <= 4; ++ex) {
    heavy_study.add(study::Scenario(format("Example %zu", ex),
                                    gen::make_table1_example(ex, 5000)));
  }
  heavy_study.add(study::Backend::baseline());
  heavy_study.add(study::Backend::equivalent());
  study::StudyOptions heavy_opts;
  heavy_opts.repetitions = 1;
  heavy_opts.observe = false;
  heavy_opts.compare_traces = false;
  heavy_opts.event_overhead_ns = 2000.0;
  const study::Report heavy = heavy_study.run(heavy_opts);

  ConsoleTable heavy_table({"Architecture model", "exec time (s)", "Speed-up",
                            "Kernel-event ratio", "Paper speed-up"});
  for (std::size_t ex = 1; ex <= 4; ++ex) {
    const std::string scenario = format("Example %zu", ex);
    const study::Cell& base = heavy.at(scenario, "baseline");
    const study::Cell& eq = heavy.at(scenario, "equivalent");
    heavy_table.add_row({scenario, format("%.3f", base.metrics.wall_seconds),
                         format("%.2f", eq.speedup_vs_reference),
                         format("%.2f", eq.kernel_event_ratio_vs_reference),
                         format("%.2f", kPaperSpeedup[ex - 1])});
  }
  std::printf("%s\n", heavy_table.render().c_str());
  return 0;
}
