/// \file bench_table1.cpp
/// Reproduces Table I of the paper: "Measurement of achieved simulation
/// speed-up on distinct architecture models".
///
/// Examples 1..4 are chains of 1..4 didactic blocks, each simulated with
/// 20000 data tokens of varying size through the input relation, exactly as
/// in Section IV. For every example we report the baseline model execution
/// time, the event ratio, the achieved speed-up and the node count of the
/// temporal dependency graph, and we assert the accuracy property (instant
/// and usage traces identical).
///
/// Paper reference values (Intel CoFluent Studio on a 2.2 GHz Core2 Duo):
///   exec time 22 / 41.2 / 59.4 / 80.2 s; event ratio 2.33 / 4.66 / 7 / 9.33;
///   speed-up 2.27 / 4.47 / 6.38 / 8.35; nodes 10 / 19 / 28 / 37.
/// Absolute times differ on this substrate; the monotone scaling of ratio
/// and speed-up with the block count is the reproduced shape.

#include <cstdio>

#include "core/experiment.hpp"
#include "gen/chains.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;

  constexpr std::uint64_t kTokens = 20000;
  std::printf("Table I reproduction: %s tokens per model, median of 3 runs\n\n",
              with_commas(static_cast<std::int64_t>(kTokens)).c_str());

  ConsoleTable table({"Architecture model", "exec time (s)", "Event ratio",
                      "Kernel-event ratio", "Speed-up", "Speed-up (obs. on)",
                      "Nodes (paper conv.)", "Accurate"});

  static const double kPaperSpeedup[] = {2.27, 4.47, 6.38, 8.35};
  static const double kPaperRatio[] = {2.33, 4.66, 7.0, 9.33};

  for (std::size_t ex = 1; ex <= 4; ++ex) {
    const model::ArchitectureDesc desc = gen::make_table1_example(ex, kTokens);
    // Accuracy-checked run (observation traces recorded and compared).
    core::ExperimentOptions checked;
    checked.repetitions = 3;
    const core::Comparison cmp = core::run_comparison(desc, checked);
    // Pure simulation-speed run (no observation recording, as a plain
    // what-is-the-simulation-time measurement).
    core::ExperimentOptions speed = checked;
    speed.observe = false;
    const core::Comparison fast = core::run_comparison(desc, speed);

    table.add_row({format("Example %zu", ex),
                   format("%.3f", fast.baseline.wall_seconds),
                   format("%.2f", cmp.event_ratio),
                   format("%.2f", cmp.kernel_event_ratio),
                   format("%.2f", fast.speedup),
                   format("%.2f", cmp.speedup),
                   format("%zu", cmp.graph_paper_nodes),
                   cmp.accurate() ? "yes" : "NO"});
    std::printf("Example %zu: paper speed-up %.2f (event ratio %.2f) -> "
                "measured %.2f (%.2f)\n",
                ex, kPaperSpeedup[ex - 1], kPaperRatio[ex - 1], fast.speedup,
                cmp.event_ratio);
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Note: node counts step by 8 per block here vs the paper's 9 — our\n"
      "chained blocks share the inter-block relation (see docs/EXPERIMENTS.md).\n\n");

  // The paper's substrate (Intel CoFluent Studio / SystemC) pays far more
  // per kernel event than this library's coroutine kernel (~60ns). In the
  // commercial-kernel regime — emulated by a synthetic 2us per-event cost
  // applied to BOTH models — the speed-up converges to the event ratio,
  // which is the paper's operating point.
  std::printf("Commercial-kernel regime (synthetic 2us per event, %s tokens):\n",
              with_commas(5000).c_str());
  ConsoleTable heavy({"Architecture model", "exec time (s)", "Speed-up",
                      "Kernel-event ratio", "Paper speed-up"});
  for (std::size_t ex = 1; ex <= 4; ++ex) {
    const model::ArchitectureDesc desc = gen::make_table1_example(ex, 5000);
    core::ExperimentOptions opts;
    opts.repetitions = 1;
    opts.observe = false;
    opts.compare_traces = false;
    opts.event_overhead_ns = 2000.0;
    const core::Comparison cmp = core::run_comparison(desc, opts);
    heavy.add_row({format("Example %zu", ex),
                   format("%.3f", cmp.baseline.wall_seconds),
                   format("%.2f", cmp.speedup),
                   format("%.2f", cmp.kernel_event_ratio),
                   format("%.2f", kPaperSpeedup[ex - 1])});
  }
  std::printf("%s\n", heavy.render().c_str());
  return 0;
}
