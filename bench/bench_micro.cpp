/// \file bench_micro.cpp
/// Microbenchmarks (google-benchmark) of the primitive costs behind the
/// paper's trade-off: the cost of one kernel event / context switch /
/// rendezvous transfer versus the cost of evaluating one TDG node. The
/// ratio of these two numbers predicts where Fig. 5's crossover lands on
/// this substrate.
///
/// `--json <path>` (or `--json=<path>`) writes the results as JSON next to
/// the console report (shorthand for google-benchmark's --benchmark_out
/// flags; scripts/bench_report.sh uses it for the bench trajectory).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "util/json.hpp"

#include "gen/didactic.hpp"
#include "model/baseline.hpp"
#include "sim/channel.hpp"
#include "sim/kernel.hpp"
#include "tdg/derive.hpp"
#include "tdg/engine.hpp"
#include "tdg/simplify.hpp"

namespace {

using namespace maxev;
using namespace maxev::literals;

/// One timed-wait kernel event (schedule + pop + coroutine resume).
void BM_KernelDelayEvent(benchmark::State& state) {
  const std::int64_t n = state.max_iterations;
  sim::Kernel kernel;
  std::int64_t done = 0;
  kernel.spawn("p", [&]() -> sim::Process {
    for (std::int64_t i = 0; i < n; ++i) {
      co_await kernel.delay(1_ns);
      ++done;
    }
  });
  for (auto _ : state) {
    // Drive exactly one event per benchmark iteration.
    kernel.run(kernel.now() + 1_ns);
  }
  benchmark::DoNotOptimize(done);
}
BENCHMARK(BM_KernelDelayEvent);

/// One rendezvous transfer (writer + reader, two processes).
void BM_RendezvousTransfer(benchmark::State& state) {
  const std::int64_t n = state.max_iterations;
  sim::Kernel kernel;
  sim::Rendezvous<model::Token> ch(kernel, "c");
  kernel.spawn("w", [&]() -> sim::Process {
    for (std::int64_t i = 0; i < n; ++i) {
      co_await kernel.delay(1_ns);
      co_await ch.write(model::Token{});
    }
  });
  kernel.spawn("r", [&]() -> sim::Process {
    for (std::int64_t i = 0; i < n; ++i) (void)co_await ch.read();
  });
  for (auto _ : state) {
    kernel.run(kernel.now() + 1_ns);
  }
  benchmark::DoNotOptimize(ch.transfers());
}
BENCHMARK(BM_RendezvousTransfer);

/// One TDG instance evaluation on a padded pass-through chain.
void BM_TdgNodeEvaluation(benchmark::State& state) {
  const auto pad = static_cast<std::size_t>(state.range(0));
  const model::ArchitectureDesc desc = gen::make_didactic({});
  tdg::DerivedTdg derived = tdg::derive_full_tdg(desc);
  tdg::Graph g = tdg::fold_pass_through(derived.graph);
  g = tdg::pad_graph(g, pad);
  g.freeze();
  tdg::Engine engine(g);
  const tdg::NodeId u = g.find("u:M1");
  model::TokenAttrs attrs;
  attrs.size = 512;
  std::uint64_t k = 0;
  for (auto _ : state) {
    engine.set_attrs(0, k, attrs);
    engine.set_external(u, k, TimePoint::at_ps(static_cast<std::int64_t>(k) * 1000));
    engine.set_retain_floor(k + 1);
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(engine.instances_computed()));
  state.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(engine.instances_computed()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_TdgNodeEvaluation)->Arg(0)->Arg(100)->Arg(1000);

/// Full ComputeInstant() for one didactic iteration (what replaces ~6
/// relation events).
void BM_ComputeInstantDidactic(benchmark::State& state) {
  const model::ArchitectureDesc desc = gen::make_didactic({});
  tdg::DerivedTdg derived = tdg::derive_full_tdg(desc);
  tdg::Graph g = tdg::fold_pass_through(derived.graph);
  g.freeze();
  tdg::Engine engine(g);
  const tdg::NodeId u = g.find("u:M1");
  model::TokenAttrs attrs;
  attrs.size = 512;
  std::uint64_t k = 0;
  for (auto _ : state) {
    engine.set_attrs(0, k, attrs);
    engine.set_external(u, k, TimePoint::at_ps(static_cast<std::int64_t>(k) * 1000));
    engine.set_retain_floor(k + 1);
    ++k;
  }
}
BENCHMARK(BM_ComputeInstantDidactic);

/// Baseline didactic simulation cost per token (all events included).
void BM_BaselinePerToken(benchmark::State& state) {
  gen::DidacticConfig cfg;
  cfg.tokens = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    const model::ArchitectureDesc desc = gen::make_didactic(cfg);
    model::ModelRuntime rt(desc);
    state.ResumeTiming();
    (void)rt.run();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.tokens));
}
BENCHMARK(BM_BaselinePerToken)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Translate --json[=]<path> into google-benchmark's out-file flags, pass
  // everything else through untouched.
  const std::string json_path = maxev::extract_json_flag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::vector<std::string> storage;
  if (!json_path.empty()) {
    storage.push_back("--benchmark_out=" + json_path);
    storage.push_back("--benchmark_out_format=json");
    for (std::string& s : storage) args.push_back(s.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
