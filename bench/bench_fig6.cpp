/// \file bench_fig6.cpp
/// Reproduces Fig. 6 of the paper: observation of the LTE receiver's
/// evolution over one complete frame of 14 symbols spaced 71.42 µs apart.
///
/// (a) input offers u(k) and output instants y(k) over simulation time;
/// (b) DSP computational complexity per time unit (GOPS) — paper shows
///     steps around 4 (control symbols) and 8 (data symbols);
/// (c) dedicated decoder complexity — paper shows levels around 75 / 150.
///
/// All three series are produced by the *equivalent model* from computed
/// instants (the paper's "observation time", no simulator involvement) and
/// checked to be identical to the event-driven baseline's live observation.
/// Emits fig6_dsp.csv, fig6_decoder.csv, fig6_instants.csv and
/// fig6_usage.vcd (viewable in GTKWave).

#include <cstdio>

#include "core/equivalent_model.hpp"
#include "lte/receiver.hpp"
#include "lte/scenario.hpp"
#include "model/baseline.hpp"
#include "trace/vcd.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;

  lte::ReceiverConfig cfg;
  cfg.symbols = lte::kSymbolsPerSubframe;  // one complete frame
  cfg.schedule =
      lte::fixed_frame_schedule({100, lte::Modulation::kQam64, 0.75});
  const model::ArchitectureDesc desc = lte::make_receiver(cfg);

  // Equivalent model: the observed traces come from computed instants.
  core::EquivalentModel eq(desc, {});
  const auto outcome = eq.run();
  if (!outcome.completed) {
    std::fprintf(stderr, "stall: %s\n", outcome.stall_report.c_str());
    return 1;
  }

  // Accuracy cross-check against the baseline's live observation.
  model::ModelRuntime baseline(desc);
  if (!baseline.run().completed) return 1;
  trace::UsageTraceSet a = baseline.usage();
  trace::UsageTraceSet b = eq.usage();
  a.sort_all();
  b.sort_all();
  const auto usage_diff = trace::compare_usage(a, b);
  const auto instant_diff =
      trace::compare_instants(baseline.instants(), eq.instants());

  // (a) u(k) and y(k) over simulation time.
  const trace::InstantSeries* u = eq.instants().find("sym_in");
  const trace::InstantSeries* y = eq.instants().find("dec_out");
  CsvWriter inst_csv("fig6_instants.csv", {"k", "u_us", "y_us"});
  std::printf("Fig. 6(a): one LTE frame, symbol period %.2fus\n",
              lte::kSymbolPeriod.micros());
  for (std::size_t k = 0; k < u->size(); ++k) {
    inst_csv.row_numeric({static_cast<double>(k), u->values()[k].micros(),
                          y->values()[k].micros()});
  }
  std::printf("  u(0)=%.2fus ... u(13)=%.2fus; y(0)=%.2fus ... y(13)=%.2fus\n\n",
              u->values().front().micros(), u->values().back().micros(),
              y->values().front().micros(), y->values().back().micros());

  // (b), (c): windowed GOPS with the symbol period as bin.
  const lte::SymbolGops gops = lte::per_symbol_gops(eq.usage());
  CsvWriter dsp_csv("fig6_dsp.csv", {"t_us", "gops"});
  CsvWriter dec_csv("fig6_decoder.csv", {"t_us", "gops"});
  ConsoleTable table({"symbol", "type", "DSP GOPS", "decoder GOPS"});
  for (std::size_t s = 0; s < gops.dsp.size(); ++s) {
    dsp_csv.row_numeric({gops.dsp[s].t.micros(), gops.dsp[s].gops});
    const double dec = s < gops.decoder.size() ? gops.decoder[s].gops : 0.0;
    if (s < gops.decoder.size())
      dec_csv.row_numeric({gops.decoder[s].t.micros(), dec});
    if (s < lte::kSymbolsPerSubframe) {
      table.add_row({format("%zu", s),
                     s < static_cast<std::size_t>(lte::kControlSymbols)
                         ? "control"
                         : "data",
                     format("%.2f", gops.dsp[s].gops), format("%.2f", dec)});
    }
  }
  std::printf("Fig. 6(b)/(c): complexity per time unit (GOPS), one row per "
              "symbol period\n%s\n",
              table.render().c_str());
  std::printf("paper bands: DSP ~4 on control / ~8 on data symbols; decoder "
              "~75-150 on data symbols\n\n");

  // VCD waveform of both resources' activity.
  trace::VcdWriter vcd("lte_frame");
  const int dsp_sig = vcd.add_real("dsp_gops");
  const int dec_sig = vcd.add_real("decoder_gops");
  if (const trace::UsageTrace* t = eq.usage().find("dsp"))
    for (const auto& p : t->rate_profile()) vcd.change_real(dsp_sig, p.t, p.gops);
  if (const trace::UsageTrace* t = eq.usage().find("turbo_dec"))
    for (const auto& p : t->rate_profile()) vcd.change_real(dec_sig, p.t, p.gops);
  vcd.write_file("fig6_usage.vcd");

  const lte::Feasibility feas = lte::dsp_feasibility(eq.usage());
  std::printf("%s\n", feas.to_string().c_str());
  std::printf("accuracy: instants %s, usage %s\n",
              instant_diff ? instant_diff->c_str() : "identical",
              usage_diff ? usage_diff->c_str() : "identical");
  std::printf("wrote fig6_instants.csv fig6_dsp.csv fig6_decoder.csv "
              "fig6_usage.vcd\n");
  return (instant_diff || usage_diff) ? 1 : 0;
}
