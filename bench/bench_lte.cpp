/// \file bench_lte.cpp
/// Reproduces the Section V case-study speed experiment: the LTE receiver
/// (8 functions, DSP + dedicated decoder) simulated with 20000 data symbols
/// under per-frame varying parameters, as a two-backend study::Study with
/// the event-driven baseline as reference.
///
/// Paper: "A simulation speed-up by a factor of 4 has been measured for the
/// simulation of 20000 data symbols, whereas the ratio of events between
/// models is 4.2", with an 11-node temporal dependency graph.

#include <cstdio>

#include "lte/receiver.hpp"
#include "study/study.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;

  constexpr std::uint64_t kSymbols = 20000;
  std::printf(
      "LTE case study: %s OFDM symbols, varying PRB/modulation per frame\n\n",
      with_commas(static_cast<std::int64_t>(kSymbols)).c_str());

  lte::ReceiverConfig cfg;
  cfg.symbols = kSymbols;
  cfg.seed = 2014;

  study::Study st;
  st.add(study::Scenario("lte_rx", lte::make_receiver(cfg)));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());

  study::StudyOptions opts;
  opts.repetitions = 3;
  const study::Report report = st.run(opts);

  const study::Cell& base = report.at("lte_rx", "baseline");
  const study::Cell& eq = report.at("lte_rx", "equivalent");

  ConsoleTable table({"Metric", "Baseline", "Equivalent model"});
  table.add_row({"model execution time (s)",
                 format("%.3f", base.metrics.wall_seconds),
                 format("%.3f", eq.metrics.wall_seconds)});
  table.add_row({"relation events",
                 with_commas(static_cast<std::int64_t>(base.metrics.relation_events)),
                 with_commas(static_cast<std::int64_t>(eq.metrics.relation_events))});
  table.add_row({"kernel events",
                 with_commas(static_cast<std::int64_t>(base.metrics.kernel_events)),
                 with_commas(static_cast<std::int64_t>(eq.metrics.kernel_events))});
  table.add_row({"context switches",
                 with_commas(static_cast<std::int64_t>(base.metrics.resumes)),
                 with_commas(static_cast<std::int64_t>(eq.metrics.resumes))});
  table.add_row({"simulated time",
                 base.metrics.sim_end.to_string(),
                 eq.metrics.sim_end.to_string()});
  std::printf("%s\n", table.render().c_str());

  const bool accurate = eq.errors.has_value() && eq.errors->exact();
  std::printf("simulation speed-up : %.2fx   (paper: 4x)\n",
              eq.speedup_vs_reference);
  std::printf("event ratio         : %.2f    (paper: 4.2)\n",
              eq.event_ratio_vs_reference);
  std::printf("kernel-event ratio  : %.2f\n",
              eq.kernel_event_ratio_vs_reference);
  std::printf("TDG nodes           : %zu live, %zu in the paper's counting "
              "(paper: 11)\n",
              eq.graph_nodes, eq.graph_paper_nodes);
  std::printf("accuracy            : %s\n",
              accurate ? "instants and resource usage identical" : "MISMATCH");
  if (!accurate) {
    if (eq.errors.has_value() && eq.errors->instant_mismatch)
      std::printf("  instants: %s\n", eq.errors->instant_mismatch->c_str());
    if (eq.errors.has_value() && eq.errors->usage_mismatch)
      std::printf("  usage: %s\n", eq.errors->usage_mismatch->c_str());
    return 1;
  }
  return 0;
}
