/// \file bench_lte.cpp
/// Reproduces the Section V case-study speed experiment: the LTE receiver
/// (8 functions, DSP + dedicated decoder) simulated with 20000 data symbols
/// under per-frame varying parameters, as a two-backend study::Study with
/// the event-driven baseline as reference.
///
/// Paper: "A simulation speed-up by a factor of 4 has been measured for the
/// simulation of 20000 data symbols, whereas the ratio of events between
/// models is 4.2", with an 11-node temporal dependency graph.
///
/// A second section scales the case study to a multi-instance workload:
/// 8 identical receivers (one shared description) in ONE kernel, comparing
/// the composed baseline, the batched equivalent model (tdg::BatchEngine,
/// docs/DESIGN.md §9) and the isolated merged-graph equivalent model.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "lte/receiver.hpp"
#include "study/study.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;

  constexpr std::uint64_t kSymbols = 20000;
  std::printf(
      "LTE case study: %s OFDM symbols, varying PRB/modulation per frame\n\n",
      with_commas(static_cast<std::int64_t>(kSymbols)).c_str());

  lte::ReceiverConfig cfg;
  cfg.symbols = kSymbols;
  cfg.seed = 2014;

  study::Study st;
  st.add(study::Scenario("lte_rx", lte::make_receiver(cfg)));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());

  study::StudyOptions opts;
  opts.repetitions = 3;
  const study::Report report = st.run(opts);

  const study::Cell& base = report.at("lte_rx", "baseline");
  const study::Cell& eq = report.at("lte_rx", "equivalent");

  ConsoleTable table({"Metric", "Baseline", "Equivalent model"});
  table.add_row({"model execution time (s)",
                 format("%.3f", base.metrics.wall_seconds),
                 format("%.3f", eq.metrics.wall_seconds)});
  table.add_row({"relation events",
                 with_commas(static_cast<std::int64_t>(base.metrics.relation_events)),
                 with_commas(static_cast<std::int64_t>(eq.metrics.relation_events))});
  table.add_row({"kernel events",
                 with_commas(static_cast<std::int64_t>(base.metrics.kernel_events)),
                 with_commas(static_cast<std::int64_t>(eq.metrics.kernel_events))});
  table.add_row({"context switches",
                 with_commas(static_cast<std::int64_t>(base.metrics.resumes)),
                 with_commas(static_cast<std::int64_t>(eq.metrics.resumes))});
  table.add_row({"simulated time",
                 base.metrics.sim_end.to_string(),
                 eq.metrics.sim_end.to_string()});
  std::printf("%s\n", table.render().c_str());

  const bool accurate = eq.errors.has_value() && eq.errors->exact();
  std::printf("simulation speed-up : %.2fx   (paper: 4x)\n",
              eq.speedup_vs_reference);
  std::printf("event ratio         : %.2f    (paper: 4.2)\n",
              eq.event_ratio_vs_reference);
  std::printf("kernel-event ratio  : %.2f\n",
              eq.kernel_event_ratio_vs_reference);
  std::printf("TDG nodes           : %zu live, %zu in the paper's counting "
              "(paper: 11)\n",
              eq.graph_nodes, eq.graph_paper_nodes);
  std::printf("accuracy            : %s\n",
              accurate ? "instants and resource usage identical" : "MISMATCH");
  if (!accurate) {
    if (eq.errors.has_value() && eq.errors->instant_mismatch)
      std::printf("  instants: %s\n", eq.errors->instant_mismatch->c_str());
    if (eq.errors.has_value() && eq.errors->usage_mismatch)
      std::printf("  usage: %s\n", eq.errors->usage_mismatch->c_str());
    return 1;
  }

  // --- Multi-instance composition: 8 receivers, one kernel ----------------
  constexpr std::size_t kReceivers = 8;
  constexpr std::uint64_t kMultiSymbols = 10000;
  lte::ReceiverConfig mcfg;
  mcfg.symbols = kMultiSymbols;
  mcfg.seed = 2014;
  const model::DescPtr shared_rx = model::share(lte::make_receiver(mcfg));
  std::vector<study::Scenario> parts;
  for (std::size_t i = 0; i < kReceivers; ++i)
    parts.emplace_back("rx" + std::to_string(i), shared_rx);
  const study::Scenario composed = study::compose("ca8", parts);

  study::Study multi;
  multi.add(composed);
  multi.add(study::Backend::baseline());
  multi.add(study::Backend::equivalent());
  study::StudyOptions mopts;
  mopts.repetitions = 3;  // batch_composed defaults to on
  const study::Report mrep = multi.run(mopts);
  const study::Cell& mbase = mrep.at("ca8", "baseline");
  const study::Cell& meq = mrep.at("ca8", "equivalent");

  // The batched-vs-isolated ratio is measured with the same statistic on
  // both legs (best of 3, matching bench_ablation's Ablation 5) — the
  // Study above keeps its median for the baseline speed-up and the
  // accuracy verdict.
  double isolated_s = 1e100;
  double batched_s = 1e100;
  for (const bool batched : {false, true}) {
    study::RunConfig rc;
    rc.batch_composed = batched;
    double& best = batched ? batched_s : isolated_s;
    for (int rep = 0; rep < mopts.repetitions; ++rep) {
      auto m = study::Backend::equivalent().instantiate(composed, rc);
      const auto t0 = std::chrono::steady_clock::now();
      (void)m->run();
      best = std::min(
          best,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
  }

  std::printf("\nmulti-instance composition: %zu identical receivers, %s "
              "symbols each, one kernel\n",
              kReceivers,
              with_commas(static_cast<std::int64_t>(kMultiSymbols)).c_str());
  ConsoleTable mt({"Metric", "Baseline", "Equivalent (batched)"});
  mt.add_row({"model execution time (s)",
              format("%.3f", mbase.metrics.wall_seconds),
              format("%.3f", meq.metrics.wall_seconds)});
  mt.add_row({"kernel events",
              with_commas(static_cast<std::int64_t>(mbase.metrics.kernel_events)),
              with_commas(static_cast<std::int64_t>(meq.metrics.kernel_events))});
  mt.add_row({"TDG program nodes", "-", format("%zu", meq.graph_nodes)});
  std::printf("%s\n", mt.render().c_str());
  std::printf("speed-up vs composed baseline : %.2fx\n",
              meq.speedup_vs_reference);
  std::printf("batched vs isolated engine    : %.2fx (batched %.3f s, "
              "isolated %.3f s)\n",
              isolated_s / batched_s, batched_s, isolated_s);
  std::printf("accuracy                      : %s\n",
              meq.errors.has_value() && meq.errors->exact()
                  ? "instants and resource usage identical"
                  : "MISMATCH");
  if (!(meq.errors.has_value() && meq.errors->exact())) return 1;

  // --- Mixed composition: 4+4 receivers of two carrier variants -----------
  // The heterogeneous case (docs/DESIGN.md §10): two structurally distinct
  // receiver descriptions, four instances each, in ONE kernel. The grouped
  // equivalent model runs each equal-structure quad through its own shared
  // tdg::Program + BatchEngine; the fully-isolated leg compiles the 8-fold
  // merged graph. Padding sweeps the per-instance TDG complexity, the same
  // axis as Ablations 5/6: at pad 0 the composition is kernel-bound (both
  // legs simulate the same boundary events, so batching is neutral); the
  // shared-program win appears as per-instance computation grows.
  constexpr std::size_t kPerVariant = 4;
  constexpr std::uint64_t kMixedSymbols = 10000;
  const auto variants =
      lte::carrier_aggregation_variants(2, kMixedSymbols, 2014);
  std::vector<model::DescPtr> variant_descs;
  for (const lte::CarrierVariant& v : variants)
    variant_descs.push_back(model::share(lte::make_receiver(v.config)));

  std::printf("\nmixed composition: %zu+%zu receivers of two carrier "
              "variants, %s symbols each, one kernel\n",
              kPerVariant, kPerVariant,
              with_commas(static_cast<std::int64_t>(kMixedSymbols)).c_str());
  ConsoleTable mixed_table(
      {"pad/instance", "isolated (s)", "batched (s)", "speed-up"});
  bool mixed_accurate = true;
  double peak_mixed_speedup = 0.0;
  for (const std::size_t pad : {0u, 200u}) {
    std::vector<study::Scenario> mixed_parts;
    for (std::size_t v = 0; v < variant_descs.size(); ++v) {
      for (std::size_t i = 0; i < kPerVariant; ++i) {
        study::Scenario s(variants[v].name + "rx" + std::to_string(i),
                          variant_descs[v]);
        s.with_pad_nodes(pad);
        mixed_parts.push_back(std::move(s));
      }
    }
    const study::Scenario mixed = study::compose("camix8", mixed_parts);

    double wall[2] = {0.0, 0.0};
    std::unique_ptr<study::Model> leg[2];  // last timed run, traces intact
    for (const bool batched : {false, true}) {
      study::RunConfig rc;
      rc.batch_composed = batched;
      double best = 1e100;
      for (int rep = 0; rep < mopts.repetitions; ++rep) {
        auto m = study::Backend::equivalent().instantiate(mixed, rc);
        const auto t0 = std::chrono::steady_clock::now();
        (void)m->run();
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
        leg[batched ? 1 : 0] = std::move(m);
      }
      wall[batched ? 1 : 0] = best;
    }
    // Accuracy: the grouped and the fully-isolated legs must agree on the
    // complete composed trace set (compared on the timed runs' traces —
    // every repetition records, so no extra simulation is needed).
    mixed_accurate =
        mixed_accurate &&
        trace::compare_instants(leg[0]->instants(), leg[1]->instants()) ==
            std::nullopt;

    const double speedup = wall[0] / wall[1];
    peak_mixed_speedup = std::max(peak_mixed_speedup, speedup);
    mixed_table.add_row({format("%zu", pad), format("%.3f", wall[0]),
                         format("%.3f", wall[1]), format("%.2fx", speedup)});
  }
  std::printf("%s\n", mixed_table.render().c_str());
  std::printf("peak batched-groups speed-up  : %.2fx\n", peak_mixed_speedup);
  std::printf("accuracy                      : %s\n",
              mixed_accurate ? "instants identical across legs" : "MISMATCH");
  return mixed_accurate ? 0 : 1;
}
