/// \file bench_lte.cpp
/// Reproduces the Section V case-study speed experiment: the LTE receiver
/// (8 functions, DSP + dedicated decoder) simulated with 20000 data symbols
/// under per-frame varying parameters.
///
/// Paper: "A simulation speed-up by a factor of 4 has been measured for the
/// simulation of 20000 data symbols, whereas the ratio of events between
/// models is 4.2", with an 11-node temporal dependency graph.

#include <cstdio>

#include "core/experiment.hpp"
#include "lte/receiver.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;

  constexpr std::uint64_t kSymbols = 20000;
  std::printf(
      "LTE case study: %s OFDM symbols, varying PRB/modulation per frame\n\n",
      with_commas(static_cast<std::int64_t>(kSymbols)).c_str());

  lte::ReceiverConfig cfg;
  cfg.symbols = kSymbols;
  cfg.seed = 2014;
  const model::ArchitectureDesc desc = lte::make_receiver(cfg);

  core::ExperimentOptions opts;
  opts.repetitions = 3;
  const core::Comparison cmp = core::run_comparison(desc, opts);

  ConsoleTable table({"Metric", "Baseline", "Equivalent model"});
  table.add_row({"model execution time (s)",
                 format("%.3f", cmp.baseline.wall_seconds),
                 format("%.3f", cmp.equivalent.wall_seconds)});
  table.add_row({"relation events",
                 with_commas(static_cast<std::int64_t>(cmp.baseline.relation_events)),
                 with_commas(static_cast<std::int64_t>(cmp.equivalent.relation_events))});
  table.add_row({"kernel events",
                 with_commas(static_cast<std::int64_t>(cmp.baseline.kernel_events)),
                 with_commas(static_cast<std::int64_t>(cmp.equivalent.kernel_events))});
  table.add_row({"context switches",
                 with_commas(static_cast<std::int64_t>(cmp.baseline.resumes)),
                 with_commas(static_cast<std::int64_t>(cmp.equivalent.resumes))});
  table.add_row({"simulated time",
                 cmp.baseline.sim_end.to_string(),
                 cmp.equivalent.sim_end.to_string()});
  std::printf("%s\n", table.render().c_str());

  std::printf("simulation speed-up : %.2fx   (paper: 4x)\n", cmp.speedup);
  std::printf("event ratio         : %.2f    (paper: 4.2)\n", cmp.event_ratio);
  std::printf("kernel-event ratio  : %.2f\n", cmp.kernel_event_ratio);
  std::printf("TDG nodes           : %zu live, %zu in the paper's counting "
              "(paper: 11)\n",
              cmp.graph_nodes, cmp.graph_paper_nodes);
  std::printf("accuracy            : %s\n",
              cmp.accurate() ? "instants and resource usage identical"
                             : "MISMATCH");
  if (!cmp.accurate()) {
    if (cmp.instant_mismatch)
      std::printf("  instants: %s\n", cmp.instant_mismatch->c_str());
    if (cmp.usage_mismatch)
      std::printf("  usage: %s\n", cmp.usage_mismatch->c_str());
    return 1;
  }
  return 0;
}
