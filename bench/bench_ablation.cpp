/// \file bench_ablation.cpp
/// Ablations of the design choices docs/DESIGN.md §4 calls out:
///  1. graph folding (paper's Fig. 3 compact form) vs the raw
///     per-statement graph — same instants, different computation cost;
///  2. the analytic (max,+) throughput bound (maximum cycle ratio of the
///     TDG) vs the measured steady-state output period;
///  3. marginal computation cost per padding node (the slope behind
///     Fig. 5's degradation).

#include <chrono>
#include <cstdio>

#include "core/equivalent_model.hpp"
#include "core/experiment.hpp"
#include "gen/didactic.hpp"
#include "lte/receiver.hpp"
#include "tdg/derive.hpp"
#include "tdg/export.hpp"
#include "tdg/simplify.hpp"
#include "util/strings.hpp"

namespace {

using namespace maxev;

double time_equivalent(const model::ArchitectureDesc& desc,
                       core::EquivalentModel::Options opts,
                       std::uint64_t* instances) {
  core::EquivalentModel eq(desc, {}, opts);
  const auto t0 = std::chrono::steady_clock::now();
  (void)eq.run();
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (instances != nullptr) *instances = eq.engine().instances_computed();
  return s;
}

}  // namespace

int main() {
  // --- 1. fold vs raw -----------------------------------------------------
  gen::DidacticConfig cfg;
  cfg.tokens = 20000;
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);

  core::EquivalentModel::Options folded;
  folded.fold = true;
  core::EquivalentModel::Options raw;
  raw.fold = false;

  std::uint64_t inst_folded = 0, inst_raw = 0;
  const double t_folded = time_equivalent(desc, folded, &inst_folded);
  const double t_raw = time_equivalent(desc, raw, &inst_raw);

  ConsoleTable t1({"graph form", "nodes", "instances computed", "run (s)"});
  {
    tdg::DerivedTdg d1 = tdg::derive_full_tdg(desc);
    tdg::Graph gf = tdg::fold_pass_through(d1.graph);
    tdg::DerivedTdg d2 = tdg::derive_full_tdg(desc);
    t1.add_row({"raw (per statement)", format("%zu", d2.graph.node_count()),
                with_commas(static_cast<std::int64_t>(inst_raw)),
                format("%.3f", t_raw)});
    t1.add_row({"folded (Fig. 3 form)", format("%zu", gf.node_count()),
                with_commas(static_cast<std::int64_t>(inst_folded)),
                format("%.3f", t_folded)});
  }
  std::printf("Ablation 1: fold_pass_through (identical instants, checked by "
              "the test suite)\n%s\n",
              t1.render().c_str());

  // --- 2. analytic throughput bound vs measurement -------------------------
  // Self-timed didactic: the steady-state output period equals the maximum
  // cycle ratio of the TDG (mean durations over the token-size
  // distribution).
  tdg::DerivedTdg derived = tdg::derive_full_tdg(desc);
  tdg::Graph g = tdg::fold_pass_through(derived.graph);
  g.freeze();
  const auto attrs_provider = [&](model::SourceId, std::uint64_t k) {
    return desc.sources()[0].attrs(k);
  };
  const auto bound = tdg::throughput_bound(g, attrs_provider, 4096);

  core::EquivalentModel eq(desc, {});
  (void)eq.run();
  const trace::InstantSeries* out = eq.instants().find("M6");
  const std::size_t n = out->size();
  const double measured_period =
      (out->values()[n - 1] - out->values()[n / 2]).seconds() /
      static_cast<double>(n - 1 - n / 2) * 1e12;

  std::printf("Ablation 2: throughput bound\n");
  std::printf("  max cycle ratio (analytic)   : %s/iteration\n",
              Duration::ps(static_cast<std::int64_t>(bound.max_ratio))
                  .to_string()
                  .c_str());
  std::printf("  measured steady-state period : %s/iteration\n",
              Duration::ps(static_cast<std::int64_t>(measured_period))
                  .to_string()
                  .c_str());
  std::printf("  relative difference          : %.2f%%\n\n",
              100.0 * (measured_period - bound.max_ratio) / bound.max_ratio);

  // --- 3. marginal cost per node -------------------------------------------
  ConsoleTable t3({"pad nodes", "run (s)", "ns per token per node"});
  const double t_base = time_equivalent(desc, folded, nullptr);
  for (std::size_t pad : {200u, 1000u, 5000u}) {
    core::EquivalentModel::Options opts;
    opts.pad_nodes = pad;
    const double t = time_equivalent(desc, opts, nullptr);
    const double per_node =
        (t - t_base) / static_cast<double>(cfg.tokens) /
        static_cast<double>(pad) * 1e9;
    t3.add_row({format("%zu", pad), format("%.3f", t),
                format("%.3f", per_node)});
  }
  std::printf("Ablation 3: per-node computation cost (Fig. 5's slope)\n%s\n",
              t3.render().c_str());

  // --- 4. event-cost sensitivity -------------------------------------------
  // The method's gain is (events saved) x (cost per event). Sweeping a
  // synthetic per-event cost shows the speed-up climbing from this
  // substrate's native value toward the kernel-event ratio — the regime of
  // the paper's SystemC/CoFluent measurements.
  gen::DidacticConfig scfg;
  scfg.tokens = 4000;
  const model::ArchitectureDesc sdesc = gen::make_didactic(scfg);
  ConsoleTable t4({"per-event cost", "speed-up", "kernel-event ratio"});
  for (double ns : {0.0, 250.0, 1000.0, 4000.0}) {
    core::ExperimentOptions opts;
    opts.repetitions = 1;
    opts.observe = false;
    opts.compare_traces = false;
    opts.event_overhead_ns = ns;
    const core::Comparison cmp = core::run_comparison(sdesc, opts);
    t4.add_row({ns == 0.0 ? "native (~60ns)" : format("+%.0fns", ns),
                format("%.2f", cmp.speedup),
                format("%.2f", cmp.kernel_event_ratio)});
  }
  std::printf("Ablation 4: event-cost sensitivity (didactic example)\n%s\n",
              t4.render().c_str());
  return 0;
}
