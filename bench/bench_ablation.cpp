/// \file bench_ablation.cpp
/// Ablations of the design choices docs/DESIGN.md §4 calls out:
///  0. the substrate's native per-event cost (the denominator of every
///     speed-up this library reports);
///  1. graph folding (paper's Fig. 3 compact form) vs the raw
///     per-statement graph — same instants, different computation cost;
///  2. the analytic (max,+) throughput bound (maximum cycle ratio of the
///     TDG) vs the measured steady-state output period;
///  3. marginal computation cost per padding node (the slope behind
///     Fig. 5's degradation);
///  4. event-cost sensitivity (speed-up vs synthetic per-event cost);
///  5. batched vs isolated multi-instance composition (docs/DESIGN.md §9):
///     N same-description LTE receivers in one kernel, evaluated through
///     one shared tdg::BatchEngine program vs the N-fold merged graph,
///     swept over per-instance graph complexity (padding);
///  6. heterogeneous sub-batch grouping (docs/DESIGN.md §10): a mixed
///     4+4 composition of two carrier-aggregation receiver variants, each
///     equal-structure quad on its own shared program, vs the
///     fully-isolated merged graph;
///  8. the serve subsystem (docs/DESIGN.md §13): program-cache cold vs
///     warm cell setup and study-matrix wall clock (byte-identical
///     reports), and the incremental-feed overhead of a streaming
///     serve::Session vs the same scenario run one-shot (bit-identical
///     traces);
///  10. the adaptive backend (docs/DESIGN.md §15): steady-state LTE
///     fast-forward speed-up at a long horizon vs the equivalent model,
///     and the detector's overhead on an aperiodic (varying-frame)
///     workload that never certifies.
///
/// With `--json <path>` (or `--json=<path>`) the key metrics are also
/// written as a JSON document — the repo's bench trajectory
/// (scripts/bench_report.sh, BENCH_<n>.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#if __has_include(<malloc.h>)
#include <malloc.h>
#endif
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/equivalent_model.hpp"
#include "core/experiment.hpp"
#include "gen/didactic.hpp"
#include "lte/receiver.hpp"
#include "serve/program_cache.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"
#include "sim/kernel.hpp"
#include "study/study.hpp"
#include "trace/instants.hpp"
#include "tdg/batch_engine.hpp"
#include "tdg/builder.hpp"
#include "tdg/lanes.hpp"
#include "tdg/derive.hpp"
#include "tdg/export.hpp"
#include "tdg/simplify.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace maxev;
using namespace maxev::literals;

double time_equivalent(const model::ArchitectureDesc& desc,
                       core::EquivalentModel::Options opts,
                       std::uint64_t* instances) {
  core::EquivalentModel eq(desc, {}, opts);
  const auto t0 = std::chrono::steady_clock::now();
  (void)eq.run();
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (instances != nullptr) *instances = eq.engine().instances_computed();
  return s;
}

/// Wall-clock nanoseconds of one timed-wait kernel event.
double measure_native_event_ns() {
  constexpr std::int64_t kEvents = 2'000'000;
  sim::Kernel kernel;
  kernel.spawn("p", [&kernel]() -> sim::Process {
    for (std::int64_t i = 0; i < kEvents; ++i) co_await kernel.delay(1_ns);
  });
  const auto t0 = std::chrono::steady_clock::now();
  kernel.run();
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return s / static_cast<double>(kEvents) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
#if defined(M_TRIM_THRESHOLD) && defined(M_MMAP_THRESHOLD)
  // Keep freed pages resident across reps. Model runs allocate and free tens
  // of MB of trace storage each; with default glibc behavior the allocator
  // hands those pages back to the kernel between reps, so every timed rep
  // re-faults zeroed pages. For the short arms (e.g. the adaptive
  // fast-forward, Ablation 10) that page-zeroing is larger than the work
  // being measured. All arms run in the same process, so this shifts no
  // comparison — it only takes the kernel out of the timings.
  mallopt(M_TRIM_THRESHOLD, 256 << 20);
  mallopt(M_MMAP_THRESHOLD, 256 << 20);
#endif
  const std::string json_path = extract_json_flag(argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    return 2;
  }

  // --- 0. native kernel event cost ----------------------------------------
  const double event_ns = measure_native_event_ns();
  std::printf("Ablation 0: native kernel cost\n");
  std::printf("  one timed-wait event         : %.1f ns\n\n", event_ns);

  // --- 1. fold vs raw -----------------------------------------------------
  gen::DidacticConfig cfg;
  cfg.tokens = 20000;
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);

  core::EquivalentModel::Options folded;
  folded.fold = true;
  core::EquivalentModel::Options raw;
  raw.fold = false;

  std::uint64_t inst_folded = 0, inst_raw = 0;
  const double t_folded = time_equivalent(desc, folded, &inst_folded);
  const double t_raw = time_equivalent(desc, raw, &inst_raw);

  tdg::DerivedTdg derived = tdg::derive_full_tdg(desc);
  const std::size_t raw_nodes = derived.graph.node_count();
  tdg::Graph g = tdg::fold_pass_through(derived.graph);
  const std::size_t folded_nodes = g.node_count();

  ConsoleTable t1({"graph form", "nodes", "instances computed", "run (s)"});
  t1.add_row({"raw (per statement)", format("%zu", raw_nodes),
              with_commas(static_cast<std::int64_t>(inst_raw)),
              format("%.3f", t_raw)});
  t1.add_row({"folded (Fig. 3 form)", format("%zu", folded_nodes),
              with_commas(static_cast<std::int64_t>(inst_folded)),
              format("%.3f", t_folded)});
  std::printf("Ablation 1: fold_pass_through (identical instants, checked by "
              "the test suite)\n%s\n",
              t1.render().c_str());

  // --- 2. analytic throughput bound vs measurement -------------------------
  // Self-timed didactic: the steady-state output period equals the maximum
  // cycle ratio of the TDG (mean durations over the token-size
  // distribution).
  g.freeze();
  const auto attrs_provider = [&](model::SourceId, std::uint64_t k) {
    return desc.sources()[0].attrs(k);
  };
  const auto bound = tdg::throughput_bound(g, attrs_provider, 4096);

  core::EquivalentModel eq(desc, {});
  (void)eq.run();
  const trace::InstantSeries* out = eq.instants().find("M6");
  const std::size_t n = out->size();
  const double measured_period =
      (out->values()[n - 1] - out->values()[n / 2]).seconds() /
      static_cast<double>(n - 1 - n / 2) * 1e12;
  const double bound_rel_diff =
      (measured_period - bound.max_ratio) / bound.max_ratio;

  std::printf("Ablation 2: throughput bound\n");
  std::printf("  max cycle ratio (analytic)   : %s/iteration\n",
              Duration::ps(static_cast<std::int64_t>(bound.max_ratio))
                  .to_string()
                  .c_str());
  std::printf("  measured steady-state period : %s/iteration\n",
              Duration::ps(static_cast<std::int64_t>(measured_period))
                  .to_string()
                  .c_str());
  std::printf("  relative difference          : %.2f%%\n\n",
              100.0 * bound_rel_diff);

  // --- 3. marginal cost per node -------------------------------------------
  struct PadRow {
    std::size_t pad;
    double run_s;
    double ns_per_token_per_node;
  };
  std::vector<PadRow> pad_rows;
  ConsoleTable t3({"pad nodes", "run (s)", "ns per token per node"});
  const double t_base = time_equivalent(desc, folded, nullptr);
  for (std::size_t pad : {200u, 1000u, 5000u}) {
    core::EquivalentModel::Options opts;
    opts.pad_nodes = pad;
    const double t = time_equivalent(desc, opts, nullptr);
    const double per_node =
        (t - t_base) / static_cast<double>(cfg.tokens) /
        static_cast<double>(pad) * 1e9;
    pad_rows.push_back({pad, t, per_node});
    t3.add_row({format("%zu", pad), format("%.3f", t),
                format("%.3f", per_node)});
  }
  std::printf("Ablation 3: per-node computation cost (Fig. 5's slope)\n%s\n",
              t3.render().c_str());

  // --- 4. event-cost sensitivity -------------------------------------------
  // The method's gain is (events saved) x (cost per event). Sweeping a
  // synthetic per-event cost shows the speed-up climbing from this
  // substrate's native value toward the kernel-event ratio — the regime of
  // the paper's SystemC/CoFluent measurements.
  gen::DidacticConfig scfg;
  scfg.tokens = 4000;
  const model::ArchitectureDesc sdesc = gen::make_didactic(scfg);
  struct SensRow {
    double overhead_ns;
    double speedup;
    double kernel_event_ratio;
  };
  std::vector<SensRow> sens_rows;
  ConsoleTable t4({"per-event cost", "speed-up", "kernel-event ratio"});
  for (double ns : {0.0, 250.0, 1000.0, 4000.0}) {
    core::ExperimentOptions opts;
    opts.repetitions = 1;
    opts.observe = false;
    opts.compare_traces = false;
    opts.event_overhead_ns = ns;
    const core::Comparison cmp = core::run_comparison(sdesc, opts);
    sens_rows.push_back({ns, cmp.speedup, cmp.kernel_event_ratio});
    t4.add_row({ns == 0.0 ? format("native (%.0fns)", event_ns)
                          : format("+%.0fns", ns),
                format("%.2f", cmp.speedup),
                format("%.2f", cmp.kernel_event_ratio)});
  }
  std::printf("Ablation 4: event-cost sensitivity (didactic example)\n%s\n",
              t4.render().c_str());

  // --- 5. batched vs isolated multi-instance composition -------------------
  // N identical LTE receivers share one description (study::compose keeps
  // them batch-eligible) and run in one kernel either through the batched
  // equivalent model (one compiled program + shared frame arena) or the
  // isolated merged graph (StudyOptions::batch_composed off). Padding
  // sweeps the per-instance TDG complexity: at pad 0 the composed receiver
  // is kernel-bound and batching is neutral; as computation grows (the
  // Fig. 5 regime) the shared-program fronts pull ahead.
  constexpr std::size_t kBatchInstances = 8;
  constexpr std::uint64_t kBatchSymbols = 2000;
  lte::ReceiverConfig bcfg;
  bcfg.symbols = kBatchSymbols;
  bcfg.seed = 2014;
  const model::DescPtr receiver = model::share(lte::make_receiver(bcfg));
  struct BatchRow {
    std::size_t pad;
    double isolated_s;
    double batched_s;
    double speedup;
  };
  std::vector<BatchRow> batch_rows;
  ConsoleTable t5({"pad/instance", "isolated (s)", "batched (s)", "speed-up"});
  for (std::size_t pad : {0u, 100u, 400u}) {
    std::vector<study::Scenario> parts;
    for (std::size_t i = 0; i < kBatchInstances; ++i) {
      study::Scenario s("rx" + std::to_string(i), receiver);
      s.with_pad_nodes(pad);
      parts.push_back(std::move(s));
    }
    const study::Scenario composed = study::compose("ca8", parts);
    double wall[2] = {0.0, 0.0};
    for (int batched = 0; batched < 2; ++batched) {
      study::RunConfig rc;
      rc.batch_composed = batched == 1;
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        auto model = study::Backend::equivalent().instantiate(composed, rc);
        const auto t0 = std::chrono::steady_clock::now();
        (void)model->run();
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
      }
      wall[batched] = best;
    }
    const double speedup = wall[0] / wall[1];
    batch_rows.push_back({pad, wall[0], wall[1], speedup});
    t5.add_row({format("%zu", pad), format("%.3f", wall[0]),
                format("%.3f", wall[1]), format("%.2fx", speedup)});
  }
  std::printf("Ablation 5: batched vs isolated composition (%zu LTE "
              "receivers, %s symbols each)\n%s\n",
              kBatchInstances,
              with_commas(static_cast<std::int64_t>(kBatchSymbols)).c_str(),
              t5.render().c_str());

  // --- 6. heterogeneous sub-batch grouping ---------------------------------
  // A mixed composition: 4+4 receivers of two carrier-aggregation variants
  // (different bandwidths, hence structurally distinct descriptions). The
  // grouped path runs each equal-structure quad through its own shared
  // tdg::Program + BatchEngine; the isolated path compiles the 8-fold
  // merged graph. Same padding sweep as Ablation 5.
  constexpr std::size_t kMixedPerVariant = 4;
  constexpr std::uint64_t kMixedSymbols = 2000;
  const std::vector<lte::CarrierVariant> variants =
      lte::carrier_aggregation_variants(2, kMixedSymbols, 2014);
  std::vector<model::DescPtr> variant_descs;
  for (const lte::CarrierVariant& v : variants)
    variant_descs.push_back(model::share(lte::make_receiver(v.config)));
  struct MixedRow {
    std::size_t pad;
    double isolated_s;
    double batched_s;
    double speedup;
  };
  std::vector<MixedRow> mixed_rows;
  ConsoleTable t6({"pad/instance", "isolated (s)", "batched (s)", "speed-up"});
  for (std::size_t pad : {0u, 100u, 400u}) {
    std::vector<study::Scenario> parts;
    for (std::size_t v = 0; v < variant_descs.size(); ++v) {
      for (std::size_t i = 0; i < kMixedPerVariant; ++i) {
        study::Scenario s(variants[v].name + "rx" + std::to_string(i),
                          variant_descs[v]);
        s.with_pad_nodes(pad);
        parts.push_back(std::move(s));
      }
    }
    const study::Scenario composed = study::compose("camix8", parts);
    double wall[2] = {0.0, 0.0};
    for (int batched = 0; batched < 2; ++batched) {
      study::RunConfig rc;
      rc.batch_composed = batched == 1;
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        auto model = study::Backend::equivalent().instantiate(composed, rc);
        const auto t0 = std::chrono::steady_clock::now();
        (void)model->run();
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
      }
      wall[batched] = best;
    }
    const double speedup = wall[0] / wall[1];
    mixed_rows.push_back({pad, wall[0], wall[1], speedup});
    t6.add_row({format("%zu", pad), format("%.3f", wall[0]),
                format("%.3f", wall[1]), format("%.2fx", speedup)});
  }
  std::printf("Ablation 6: heterogeneous sub-batches (%zu+%zu receivers of "
              "two carrier variants, %s symbols each)\n%s\n",
              kMixedPerVariant, kMixedPerVariant,
              with_commas(static_cast<std::int64_t>(kMixedSymbols)).c_str(),
              t6.render().c_str());

  // --- 7. study-matrix thread sweep ----------------------------------------
  // The matrix-level parallelism lever (StudyOptions::threads,
  // docs/DESIGN.md §11): an 8-cell study — 8 platform candidates on the
  // equivalent backend, the design_space example's shape — measured at 1,
  // 2, 4 and 8 worker threads. The report is bit-identical at every
  // setting; only the wall clock moves, and only as far as the machine has
  // cores.
  constexpr std::uint64_t kSweepSymbols = 2000;
  struct ThreadRow {
    int threads;
    double wall_s;
    double speedup;
  };
  std::vector<ThreadRow> thread_rows;
  {
    study::Study sweep;
    for (const double gops : {4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 14.0}) {
      lte::ReceiverConfig rc;
      rc.symbols = kSweepSymbols;
      rc.seed = 7;
      rc.dsp_ops_per_second = gops * 1e9;
      sweep.add(study::Scenario(format("dsp%.0f", gops),
                                lte::make_receiver(rc)));
    }
    sweep.add(study::Backend::equivalent());
    ConsoleTable t7({"threads", "matrix wall (s)", "speed-up vs 1"});
    for (const int threads : {1, 2, 4, 8}) {
      study::StudyOptions so;
      so.threads = threads;
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)sweep.run(so);
        best = std::min(best,
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
      }
      const double speedup =
          thread_rows.empty() ? 1.0 : thread_rows.front().wall_s / best;
      thread_rows.push_back({threads, best, speedup});
      t7.add_row({format("%d", threads), format("%.3f", best),
                  format("%.2fx", speedup)});
    }
    std::printf("Ablation 7: study-matrix thread sweep (8 cells, %s symbols "
                "each, %u hardware threads)\n%s\n",
                with_commas(static_cast<std::int64_t>(kSweepSymbols)).c_str(),
                std::thread::hardware_concurrency(), t7.render().c_str());
  }

  // --- 8. serve: program cache + streaming sessions ------------------------
  // (a) Cell setup cost, cold vs warm: the same heavily-padded didactic
  // abstraction instantiated repeatedly, each construction running the full
  // derive → fold → pad → compile chain (cold) vs hitting one shared
  // serve::ProgramCache (warm). (b) The same lever at the study level: a
  // matrix of cells sharing one description, StudyOptions::program_cache
  // off vs on — the reports must be byte-identical apart from the cache
  // columns. (c) Streaming overhead: a serve::Session fed incrementally
  // vs the identical scenario one-shot; traces are bit-identical, the
  // ratio is the price of the watermark-bounded resumes.
  constexpr std::size_t kCachePad = 4000;
  constexpr int kCacheInstantiations = 8;
  double cache_cold_s = 0.0, cache_warm_s = 0.0;
  double study_cold_s = 0.0, study_warm_s = 0.0;
  bool report_byte_identical = false;
  {
    gen::DidacticConfig ccfg;
    ccfg.tokens = 4;  // timing setup, not simulation
    const model::DescPtr cdesc = model::share(gen::make_didactic(ccfg));
    core::EquivalentModel::Options copts;
    copts.pad_nodes = kCachePad;
    std::size_t sink = 0;  // defeat over-eager optimization
    auto time_instantiations = [&](core::CompiledProvider* provider) {
      copts.compiled = provider;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCacheInstantiations; ++i) {
        core::EquivalentModel m(cdesc, {}, copts);
        sink += m.graph().node_count();
      }
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count() /
             kCacheInstantiations;
    };
    cache_cold_s = time_instantiations(nullptr);
    serve::ProgramCache cache;
    (void)cache.get(core::CompiledKey::make(cdesc, {}, true, kCachePad));
    cache_warm_s = time_instantiations(&cache);
    if (sink == 0) std::fprintf(stderr, "unexpected: empty graphs built\n");

    // Study matrix sharing one description across cells.
    gen::DidacticConfig mcfg;
    mcfg.tokens = 200;
    const model::DescPtr mdesc = model::share(gen::make_didactic(mcfg));
    study::Study matrix;
    for (int i = 0; i < 6; ++i) {
      study::Scenario s("cell" + std::to_string(i), mdesc);
      s.with_pad_nodes(kCachePad);
      matrix.add(std::move(s));
    }
    matrix.add(study::Backend::equivalent());
    std::string reports[2];
    for (const bool cached : {false, true}) {
      study::StudyOptions so;
      so.program_cache = cached;
      double best = 1e100;
      study::Report rep;
      for (int rep_i = 0; rep_i < 3; ++rep_i) {
        const auto t0 = std::chrono::steady_clock::now();
        rep = matrix.run(so);
        best = std::min(best,
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
      }
      (cached ? study_warm_s : study_cold_s) = best;
      // Blank the wall-clock fields and the cache columns: everything
      // that remains must be byte-identical between the two modes.
      for (study::Cell& c : rep.cells) {
        c.metrics.wall_seconds = 0.0;
        c.speedup_vs_reference = c.is_reference ? 1.0 : 0.0;
        c.cache_hits = -1;
        c.cache_misses = -1;
      }
      reports[cached ? 1 : 0] = rep.to_json();
    }
    report_byte_identical = reports[0] == reports[1];

    ConsoleTable t8a({"path", "cold", "warm", "speed-up"});
    t8a.add_row({"cell setup (s)", format("%.3f", cache_cold_s),
                 format("%.3f", cache_warm_s),
                 format("%.2fx", cache_cold_s / cache_warm_s)});
    t8a.add_row({"6-cell matrix (s)", format("%.3f", study_cold_s),
                 format("%.3f", study_warm_s),
                 format("%.2fx", study_cold_s / study_warm_s)});
    std::printf("Ablation 8a: program cache, pad %zu (reports byte-identical:"
                " %s)\n%s\n",
                kCachePad, report_byte_identical ? "yes" : "NO",
                t8a.render().c_str());
  }

  constexpr std::uint64_t kServeTokens = 4000;
  constexpr std::size_t kServeRounds = 8;
  double serve_one_shot_s = 0.0, serve_incremental_s = 0.0;
  bool serve_bit_identical = false;
  {
    gen::DidacticConfig scfg8;
    scfg8.tokens = kServeTokens;
    scfg8.source_period = Duration::us(10);  // a stream must have spacing
    const model::ArchitectureDesc sdesc8 = gen::make_didactic(scfg8);

    core::EquivalentModel one_shot(sdesc8, {});
    {
      const auto t0 = std::chrono::steady_clock::now();
      (void)one_shot.run();
      serve_one_shot_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    }

    // Stream-ify the scenario: the source becomes `{"type":"stream"}` and
    // its tokens are fed in kServeRounds batches.
    const JsonValue doc = json_parse(serve::desc_to_json(sdesc8));
    auto root = doc.members();
    auto d8 = root.at("desc").members();
    std::vector<JsonValue> sources8;
    for (const JsonValue& src : d8.at("sources").items()) {
      auto s = src.members();
      s["earliest"] =
          JsonValue::object({{"type", JsonValue::string("stream")}});
      s.erase("attrs");
      s.erase("gap");
      sources8.push_back(JsonValue::object(std::move(s)));
    }
    d8["sources"] = JsonValue::array(std::move(sources8));
    root["desc"] = JsonValue::object(std::move(d8));

    const model::SourceDesc& src = sdesc8.sources().front();
    std::vector<serve::Session::FedToken> tokens(src.count);
    for (std::uint64_t k = 0; k < src.count; ++k)
      tokens[k] = {src.earliest(k).count(),
                   src.attrs ? src.attrs(k) : model::TokenAttrs{}};

    serve::Session session(json_dump(JsonValue::object(std::move(root))));
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < kServeRounds; ++r) {
        const std::size_t lo = tokens.size() * r / kServeRounds;
        const std::size_t hi = tokens.size() * (r + 1) / kServeRounds;
        session.feed(0, {tokens.begin() + static_cast<std::ptrdiff_t>(lo),
                         tokens.begin() + static_cast<std::ptrdiff_t>(hi)});
        (void)session.poll();
      }
      (void)session.poll();  // fully fed: runs to completion
      serve_incremental_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    }
    serve_bit_identical =
        !trace::compare_instants(one_shot.instants(),
                                 session.model().instants())
             .has_value();

    ConsoleTable t8b({"path", "run (s)", "overhead"});
    t8b.add_row({"one-shot", format("%.3f", serve_one_shot_s), "1.00x"});
    t8b.add_row({format("streamed (%zu rounds)", kServeRounds),
                 format("%.3f", serve_incremental_s),
                 format("%.2fx", serve_incremental_s / serve_one_shot_s)});
    std::printf("Ablation 8b: serve session streaming overhead (%s tokens, "
                "bit-identical: %s)\n%s\n",
                with_commas(static_cast<std::int64_t>(kServeTokens)).c_str(),
                serve_bit_identical ? "yes" : "NO", t8b.render().c_str());
  }

  // --- 9. lane-width × dispatch sweep --------------------------------------
  // The opcode/vector layer (docs/DESIGN.md §14). Two levers, measured
  // separately:
  //  * fixed-weight lane microbench: a chain of pure-delay instants on a
  //    direct tdg::BatchEngine — every front is full-width uniform, so the
  //    drain is exactly the SoA lane kernels (tdg/lanes.hpp) vs the
  //    per-element mp::Scalar reference loop, swept over batch widths
  //    (width 1 never vectorizes and anchors the sweep at 1.00x);
  //  * opcode vs closure dispatch on the batched LTE workload: the same
  //    composed run with loads evaluated through the tdg::ops tables vs
  //    the hoisted std::function per arc term.
  // Traces are bit-identical across all four toggles (tests/test_ops.cpp
  // pins that); this ablation measures what the identity costs.
  struct LaneRow {
    std::size_t width;
    double ref_s;
    double vec_s;
    double speedup;
    double vec_lanes_per_us;
  };
  std::vector<LaneRow> lane_rows;
  constexpr std::size_t kLaneNodes = 64;
  constexpr std::uint64_t kLaneIters = 2000;
  constexpr std::size_t kKernelLanes = 4096;
  constexpr int kKernelSweeps = 20000;
  double kernel_scalar_s = 0.0, kernel_vector_s = 0.0;
  double kernel_vector_lanes_per_ns = 0.0;
  double opcode_closure_s = 0.0, opcode_tables_s = 0.0;
  {
    // The kernel itself, isolated from the drain machinery: one long SoA
    // lane accumulated fixed-weight sweep after sweep, lanes::accumulate
    // vs the element-at-a-time mp::Scalar fold (the shape of the
    // pre-vector drain loop). This is the per-lane propagation rate the
    // §14 target speaks about; the engine-level sweep below then shows
    // what survives the full flush path at realistic batch widths.
    std::vector<std::int64_t> acc_ps(kKernelLanes), src_ps(kKernelLanes);
    std::vector<std::uint8_t> acc_eps(kKernelLanes), src_eps(kKernelLanes);
    const auto reset_lanes = [&] {
      for (std::size_t i = 0; i < kKernelLanes; ++i) {
        src_ps[i] = static_cast<std::int64_t>(i) * 37;
        src_eps[i] = i % 16 == 3 ? 1 : 0;  // a sprinkling of ε lanes
      }
      tdg::lanes::fill_eps(acc_ps.data(), acc_eps.data(), kKernelLanes);
    };
    std::int64_t sink = 0;

    reset_lanes();
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < kKernelSweeps; ++s) {
        const mp::Scalar w = mp::Scalar::of(s & 1023);
        for (std::size_t i = 0; i < kKernelLanes; ++i) {
          const mp::Scalar a = acc_eps[i] != 0 ? mp::Scalar::eps()
                                               : mp::Scalar::of(acc_ps[i]);
          const mp::Scalar v = src_eps[i] != 0 ? mp::Scalar::eps()
                                               : mp::Scalar::of(src_ps[i]);
          const mp::Scalar r = a + v * w;
          acc_eps[i] = r.is_eps() ? 1 : 0;
          acc_ps[i] = r.is_eps() ? 0 : r.value();
        }
      }
      kernel_scalar_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
    for (std::size_t i = 0; i < kKernelLanes; ++i) sink += acc_ps[i];
    const std::int64_t scalar_sum = sink;

    reset_lanes();
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < kKernelSweeps; ++s)
        (void)tdg::lanes::accumulate(acc_ps.data(), acc_eps.data(),
                                     src_ps.data(), src_eps.data(), s & 1023,
                                     kKernelLanes);
      kernel_vector_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
    sink = 0;
    for (std::size_t i = 0; i < kKernelLanes; ++i) sink += acc_ps[i];
    const double kernel_lanes = static_cast<double>(kKernelLanes) *
                                static_cast<double>(kKernelSweeps);
    kernel_vector_lanes_per_ns = kernel_lanes / kernel_vector_s / 1e9;
    ConsoleTable t9k({"kernel", "run (s)", "lanes/ns", "speed-up"});
    t9k.add_row({"mp::Scalar fold", format("%.3f", kernel_scalar_s),
                 format("%.2f", kernel_lanes / kernel_scalar_s / 1e9),
                 "1.00x"});
    t9k.add_row({"lane kernel", format("%.3f", kernel_vector_s),
                 format("%.2f", kernel_vector_lanes_per_ns),
                 format("%.2fx", kernel_scalar_s / kernel_vector_s)});
    std::printf("Ablation 9: fixed-weight lane kernel (%zu lanes x %s "
                "sweeps, results identical: %s)\n%s\n",
                kKernelLanes,
                with_commas(static_cast<std::int64_t>(kKernelSweeps)).c_str(),
                sink == scalar_sum ? "yes" : "NO", t9k.render().c_str());

    tdg::GraphBuilder lb;
    lb.input("u");
    lb.instant("n0");
    lb.arc("u", "n0").fixed(Duration::ns(1));
    for (std::size_t i = 1; i < kLaneNodes; ++i) {
      const std::string prev = "n" + std::to_string(i - 1);
      const std::string cur = "n" + std::to_string(i);
      lb.instant(cur);
      // Two pure-delay in-arcs per node: a same-iteration chain arc and a
      // lagged history arc (the broadcast kernel's case on iteration 0).
      lb.arc(prev, cur).fixed(Duration::ns(1));
      lb.arc(prev, cur).lag(1).fixed(Duration::ns(2));
    }
    tdg::Graph lane_graph = lb.take();
    lane_graph.freeze();

    const auto time_lane_drain = [&](std::size_t width, bool vector) {
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        tdg::BatchEngine::Options o;
        o.instances.resize(width);
        o.expected_iterations = kLaneIters;
        o.vector_drain = vector;
        tdg::BatchEngine eng(lane_graph, o);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t k = 0; k < kLaneIters; ++k) {
          for (std::size_t i = 0; i < width; ++i)
            eng.set_external(
                i, 0, k,
                TimePoint::at_ps(static_cast<std::int64_t>(k) * 1000 +
                                 static_cast<std::int64_t>(i)));
          (void)eng.flush();
        }
        best = std::min(best, std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
      }
      return best;
    };

    ConsoleTable t9({"width", "reference (s)", "vector (s)", "speed-up",
                     "lanes/µs"});
    for (const std::size_t width : {1u, 2u, 4u, 8u}) {
      const double ref_s = time_lane_drain(width, false);
      const double vec_s = time_lane_drain(width, true);
      const double lanes =
          static_cast<double>(width * kLaneNodes) *
          static_cast<double>(kLaneIters);
      lane_rows.push_back(
          {width, ref_s, vec_s, ref_s / vec_s, lanes / vec_s / 1e6});
      t9.add_row({format("%zu", width), format("%.3f", ref_s),
                  format("%.3f", vec_s), format("%.2fx", ref_s / vec_s),
                  format("%.1f", lanes / vec_s / 1e6)});
    }
    std::printf("Ablation 9b: vector drain vs reference loop (%zu-node "
                "pure-delay chain, %s iterations)\n%s\n",
                kLaneNodes,
                with_commas(static_cast<std::int64_t>(kLaneIters)).c_str(),
                t9.render().c_str());

    std::vector<study::Scenario> parts;
    for (std::size_t i = 0; i < kBatchInstances; ++i)
      parts.emplace_back("rx" + std::to_string(i), receiver);
    const study::Scenario composed = study::compose("ca8ops", parts);
    for (const bool opcode : {false, true}) {
      study::RunConfig rc;
      rc.opcode_dispatch = opcode;
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        auto model = study::Backend::equivalent().instantiate(composed, rc);
        const auto t0 = std::chrono::steady_clock::now();
        (void)model->run();
        best = std::min(best, std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
      }
      (opcode ? opcode_tables_s : opcode_closure_s) = best;
    }
    ConsoleTable t9b({"dispatch", "run (s)", "speed-up"});
    t9b.add_row({"closure", format("%.3f", opcode_closure_s), "1.00x"});
    t9b.add_row({"opcode", format("%.3f", opcode_tables_s),
                 format("%.2fx", opcode_closure_s / opcode_tables_s)});
    std::printf("Ablation 9c: opcode vs closure load dispatch (%zu batched "
                "LTE receivers, %s symbols each)\n%s\n",
                kBatchInstances,
                with_commas(static_cast<std::int64_t>(kBatchSymbols)).c_str(),
                t9b.render().c_str());
  }

  // --- 10. adaptive fast-forward (docs/DESIGN.md §15) ---------------------
  // Steady state: a fixed-frame LTE receiver at a long horizon, where the
  // detector certifies the 14-symbol subframe period early and the analytic
  // continuation replaces almost the whole run. Aperiodic control: the
  // varying-frame schedule never stabilizes, so the same backend pays only
  // the detector feed on top of the full simulation.
  constexpr std::uint64_t kAdaptiveSymbols = 200'000;
  constexpr std::uint64_t kAperiodicSymbols = 20'000;
  double adaptive_eq_s = 0, adaptive_ff_s = 0;
  bool adaptive_extrapolated = false;
  std::uint64_t adaptive_period = 0, adaptive_ff_iters = 0;
  double aperiodic_eq_s = 0, aperiodic_ad_s = 0;
  {
    const auto time_once = [](const study::Backend& b,
                              const study::Scenario& s,
                              std::optional<study::AdaptiveStats>* stats) {
      auto model = b.instantiate(s);
      const auto t0 = std::chrono::steady_clock::now();
      (void)model->run();
      const double dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (stats != nullptr) *stats = model->adaptive_stats();
      return dt;
    };
    // The two backends of each pair are timed interleaved, rep by rep, so a
    // load or frequency shift mid-measurement biases both the same way —
    // the ratio is what the ablation reports, not the absolute times.
    const auto time_pair = [&time_once](const study::Scenario& s, int reps,
                                        double& eq_best, double& ad_best,
                                        std::optional<study::AdaptiveStats>*
                                            stats) {
      eq_best = 1e100;
      ad_best = 1e100;
      for (int rep = 0; rep < reps; ++rep) {
        eq_best = std::min(
            eq_best, time_once(study::Backend::equivalent(), s, nullptr));
        ad_best =
            std::min(ad_best, time_once(study::Backend::adaptive(), s, stats));
      }
    };

    lte::ReceiverConfig acfg;
    acfg.symbols = kAdaptiveSymbols;
    lte::FrameParams frame;
    frame.n_prb = 50;
    frame.modulation = lte::Modulation::kQam64;
    frame.code_rate = 0.75;
    acfg.fixed_frame = frame;
    const study::Scenario steady("lte_fixed",
                                 model::share(lte::make_receiver(acfg)));
    std::optional<study::AdaptiveStats> st;
    time_pair(steady, 3, adaptive_eq_s, adaptive_ff_s, &st);
    if (st.has_value()) {
      adaptive_extrapolated = st->extrapolated;
      adaptive_period = st->detected_period;
      adaptive_ff_iters = st->extrapolated_iterations;
    }

    lte::ReceiverConfig vcfg;
    vcfg.symbols = kAperiodicSymbols;
    vcfg.seed = 2014;
    const study::Scenario varying("lte_varying",
                                  model::share(lte::make_receiver(vcfg)));
    time_pair(varying, 8, aperiodic_eq_s, aperiodic_ad_s, nullptr);

    ConsoleTable t10({"workload", "equivalent (s)", "adaptive (s)", "ratio"});
    t10.add_row({"fixed frame", format("%.3f", adaptive_eq_s),
                 format("%.3f", adaptive_ff_s),
                 format("%.1fx", adaptive_eq_s / adaptive_ff_s)});
    t10.add_row({"varying frame", format("%.3f", aperiodic_eq_s),
                 format("%.3f", aperiodic_ad_s),
                 format("%.2fx", aperiodic_eq_s / aperiodic_ad_s)});
    std::printf("Ablation 10: adaptive fast-forward (fixed frame %s symbols, "
                "varying frame %s; extrapolated=%d period=%llu skipped=%llu)"
                "\n%s\n",
                with_commas(static_cast<std::int64_t>(kAdaptiveSymbols))
                    .c_str(),
                with_commas(static_cast<std::int64_t>(kAperiodicSymbols))
                    .c_str(),
                adaptive_extrapolated ? 1 : 0,
                static_cast<unsigned long long>(adaptive_period),
                static_cast<unsigned long long>(adaptive_ff_iters),
                t10.render().c_str());
  }

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.field("bench", "bench_ablation");
    w.field("tokens", static_cast<std::uint64_t>(cfg.tokens));
    w.field("native_event_ns", event_ns);
    w.key("fold").begin_object();
    w.field("raw_nodes", static_cast<std::uint64_t>(raw_nodes));
    w.field("folded_nodes", static_cast<std::uint64_t>(folded_nodes));
    w.field("raw_instances", inst_raw);
    w.field("folded_instances", inst_folded);
    w.field("raw_run_s", t_raw);
    w.field("folded_run_s", t_folded);
    w.end_object();
    w.key("throughput_bound").begin_object();
    w.field("analytic_ps_per_iteration", bound.max_ratio);
    w.field("measured_ps_per_iteration", measured_period);
    w.field("relative_difference", bound_rel_diff);
    w.end_object();
    w.key("pad_sweep").begin_array();
    for (const PadRow& r : pad_rows) {
      w.begin_object();
      w.field("pad_nodes", static_cast<std::uint64_t>(r.pad));
      w.field("run_s", r.run_s);
      w.field("ns_per_token_per_node", r.ns_per_token_per_node);
      w.end_object();
    }
    w.end_array();
    w.key("event_cost_sweep").begin_array();
    for (const SensRow& r : sens_rows) {
      w.begin_object();
      w.field("event_overhead_ns", r.overhead_ns);
      w.field("speedup", r.speedup);
      w.field("kernel_event_ratio", r.kernel_event_ratio);
      w.end_object();
    }
    w.end_array();
    w.key("batch_sweep").begin_array();
    for (const BatchRow& r : batch_rows) {
      w.begin_object();
      w.field("instances", static_cast<std::uint64_t>(kBatchInstances));
      w.field("symbols", kBatchSymbols);
      w.field("pad_nodes_per_instance", static_cast<std::uint64_t>(r.pad));
      w.field("isolated_run_s", r.isolated_s);
      w.field("batched_run_s", r.batched_s);
      w.field("batched_speedup", r.speedup);
      w.end_object();
    }
    w.end_array();
    w.key("mixed_batch_sweep").begin_array();
    for (const MixedRow& r : mixed_rows) {
      w.begin_object();
      w.field("instances",
              static_cast<std::uint64_t>(2 * kMixedPerVariant));
      w.field("groups", static_cast<std::uint64_t>(2));
      w.field("symbols", kMixedSymbols);
      w.field("pad_nodes_per_instance", static_cast<std::uint64_t>(r.pad));
      w.field("isolated_run_s", r.isolated_s);
      w.field("batched_run_s", r.batched_s);
      w.field("batched_speedup", r.speedup);
      w.end_object();
    }
    w.end_array();
    w.key("study_thread_sweep").begin_array();
    for (const ThreadRow& r : thread_rows) {
      w.begin_object();
      w.field("cells", static_cast<std::uint64_t>(8));
      w.field("symbols", kSweepSymbols);
      w.field("hardware_threads",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
      w.field("threads", static_cast<std::uint64_t>(r.threads));
      w.field("matrix_wall_s", r.wall_s);
      w.field("speedup_vs_serial", r.speedup);
      w.end_object();
    }
    w.end_array();
    w.key("program_cache").begin_object();
    w.field("pad_nodes", static_cast<std::uint64_t>(kCachePad));
    w.field("instantiations", static_cast<std::uint64_t>(kCacheInstantiations));
    w.field("cold_setup_s", cache_cold_s);
    w.field("warm_setup_s", cache_warm_s);
    w.field("warm_setup_speedup", cache_cold_s / cache_warm_s);
    w.field("study_cells", static_cast<std::uint64_t>(6));
    w.field("study_cold_wall_s", study_cold_s);
    w.field("study_warm_wall_s", study_warm_s);
    w.field("study_warm_speedup", study_cold_s / study_warm_s);
    w.field("report_byte_identical", report_byte_identical);
    w.end_object();
    w.key("serve_session").begin_object();
    w.field("tokens", kServeTokens);
    w.field("rounds", static_cast<std::uint64_t>(kServeRounds));
    w.field("one_shot_s", serve_one_shot_s);
    w.field("incremental_s", serve_incremental_s);
    w.field("incremental_overhead", serve_incremental_s / serve_one_shot_s);
    w.field("bit_identical", serve_bit_identical);
    w.end_object();
    w.key("lane_kernel").begin_object();
    w.field("lanes", static_cast<std::uint64_t>(kKernelLanes));
    w.field("sweeps", static_cast<std::uint64_t>(kKernelSweeps));
    w.field("scalar_run_s", kernel_scalar_s);
    w.field("vector_run_s", kernel_vector_s);
    w.field("vector_speedup", kernel_scalar_s / kernel_vector_s);
    w.field("vector_lanes_per_ns", kernel_vector_lanes_per_ns);
    w.end_object();
    w.key("lane_sweep").begin_array();
    for (const LaneRow& r : lane_rows) {
      w.begin_object();
      w.field("width", static_cast<std::uint64_t>(r.width));
      w.field("chain_nodes", static_cast<std::uint64_t>(kLaneNodes));
      w.field("iterations", kLaneIters);
      w.field("reference_run_s", r.ref_s);
      w.field("vector_run_s", r.vec_s);
      w.field("vector_speedup", r.speedup);
      w.field("vector_lanes_per_us", r.vec_lanes_per_us);
      w.end_object();
    }
    w.end_array();
    w.key("opcode_dispatch").begin_object();
    w.field("instances", static_cast<std::uint64_t>(kBatchInstances));
    w.field("symbols", kBatchSymbols);
    w.field("closure_run_s", opcode_closure_s);
    w.field("opcode_run_s", opcode_tables_s);
    w.field("opcode_speedup", opcode_closure_s / opcode_tables_s);
    w.end_object();
    w.key("adaptive").begin_object();
    w.field("steady_symbols", kAdaptiveSymbols);
    w.field("steady_equivalent_s", adaptive_eq_s);
    w.field("steady_adaptive_s", adaptive_ff_s);
    w.field("steady_speedup", adaptive_eq_s / adaptive_ff_s);
    w.field("extrapolated", adaptive_extrapolated);
    w.field("detected_period", adaptive_period);
    w.field("extrapolated_iterations", adaptive_ff_iters);
    w.field("aperiodic_symbols", kAperiodicSymbols);
    w.field("aperiodic_equivalent_s", aperiodic_eq_s);
    w.field("aperiodic_adaptive_s", aperiodic_ad_s);
    w.field("detector_overhead", aperiodic_ad_s / aperiodic_eq_s - 1.0);
    w.end_object();
    w.end_object();
    w.write_file(json_path);
    std::printf("JSON metrics written to %s\n", json_path.c_str());
  }
  return 0;
}
