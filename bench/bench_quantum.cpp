/// \file bench_quantum.cpp
/// The TLM-LT comparison motivating the paper's introduction: temporal
/// decoupling with a global quantum trades timing accuracy for speed
/// ("too large a value can lead to degraded timing accuracy because delays
/// due to access conflicts to shared resources are not simulated").
///
/// For the didactic architecture we sweep the quantum and report kernel
/// events, run time and the instant error against the event-driven
/// baseline, then show the paper's method as the last row: fewer events
/// than any quantum AND zero error.

#include <chrono>
#include <cstdio>

#include "core/equivalent_model.hpp"
#include "core/lt_runner.hpp"
#include "gen/didactic.hpp"
#include "model/baseline.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;
  using Clock = std::chrono::steady_clock;

  gen::DidacticConfig cfg;
  cfg.tokens = 20000;
  cfg.source_period = Duration::us(20);
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);

  model::ModelRuntime baseline(desc);
  auto t0 = Clock::now();
  (void)baseline.run();
  const double base_secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  ConsoleTable table({"model", "kernel events", "run (s)", "speed-up",
                      "max |error|", "mean |error|"});
  table.add_row({"event-driven baseline",
                 with_commas(static_cast<std::int64_t>(
                     baseline.kernel_stats().events_scheduled)),
                 format("%.3f", base_secs), "1.00", "0", "0"});

  for (const Duration quantum :
       {Duration::ns(100), Duration::us(10), Duration::us(1000),
        Duration::ms(100)}) {
    core::LooselyTimedModel lt(desc, quantum);
    t0 = Clock::now();
    const bool ok = lt.run().completed;
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const auto err = lt.error_against(baseline.instants());
    table.add_row(
        {"TLM-LT, quantum " + quantum.to_string(),
         with_commas(
             static_cast<std::int64_t>(lt.kernel_stats().events_scheduled)),
         format("%.3f", secs), format("%.2f", base_secs / secs),
         ok ? Duration::from_seconds(err.max_abs_seconds).to_string() : "-",
         ok ? Duration::from_seconds(err.mean_abs_seconds).to_string() : "-"});
  }

  core::EquivalentModel eq(desc, {});
  t0 = Clock::now();
  (void)eq.run();
  const double eq_secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const auto diff = trace::compare_instants(baseline.instants(), eq.instants());
  table.add_row({"equivalent model (this paper)",
                 with_commas(static_cast<std::int64_t>(
                     eq.kernel_stats().events_scheduled)),
                 format("%.3f", eq_secs), format("%.2f", base_secs / eq_secs),
                 diff ? "MISMATCH" : "0", diff ? "MISMATCH" : "0"});

  std::printf("TLM-LT quantum sweep vs the dynamic computation method "
              "(%s tokens)\n\n%s\n",
              with_commas(static_cast<std::int64_t>(cfg.tokens)).c_str(),
              table.render().c_str());
  std::printf("the LT rows trade error for events; the equivalent model "
              "removes events without introducing any error.\n");
  return 0;
}
