/// \file maxplus_playground.cpp
/// Working directly with the algebraic layer: write the paper's equations
/// (1)-(6) by hand with the GraphBuilder, run ComputeInstant() on them,
/// cross-check against the matrix form (equations (7)-(8)) and against the
/// analytic throughput bound.

#include <cstdio>

#include "maxplus/matrix.hpp"
#include "tdg/builder.hpp"
#include "tdg/engine.hpp"
#include "tdg/export.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;
  using namespace maxev::literals;

  // The didactic equations with constant durations:
  //   Ti1=5us Tj1=3us Ti2=4us Ti3=6us Tj3=2us Ti4=7us.
  tdg::GraphBuilder b;
  b.input("u");
  b.instant("xM1").instant("xM2").instant("xM3").instant("xM4").instant("xM5");
  b.output("xM6");
  b.arc("u", "xM1");                          // (1)
  b.arc("xM4", "xM1").lag(1);
  b.arc("xM1", "xM2").fixed(5_us);            // (2)
  b.arc("xM5", "xM2").lag(1);
  b.arc("xM2", "xM3").fixed(3_us);            // (3)
  b.arc("xM3", "xM4").fixed(4_us);            // (4)
  b.arc("xM2", "xM4").fixed(6_us);
  b.arc("xM4", "xM5").fixed(2_us);            // (5)
  b.arc("xM6", "xM5").lag(1);
  b.arc("xM5", "xM6").fixed(7_us);            // (6)
  tdg::Graph g = b.take();
  g.freeze();

  std::printf("hand-built graph: %zu nodes (%zu with history), max lag %u\n\n",
              g.node_count(), g.paper_node_count(), g.max_lag());

  // Drive it with a periodic input u(k) = k * 10us and print X(k).
  tdg::Engine engine(g);
  auto ex = tdg::to_linear_system(
      g, [](model::SourceId, std::uint64_t) { return model::TokenAttrs{}; });

  std::printf("%-4s %-10s %-10s %-10s %-10s %-10s %-10s  matrix-form y\n",
              "k", "xM1", "xM2", "xM3", "xM4", "xM5", "xM6");
  for (std::uint64_t k = 0; k < 8; ++k) {
    const TimePoint u = TimePoint::origin() + 10_us * static_cast<std::int64_t>(k);
    engine.set_external(g.find("u"), k, u);
    mp::Vector uv(1);
    uv[0] = mp::Scalar::from_time(u);
    const auto step = ex.system.step(uv);
    std::printf("%-4llu ", static_cast<unsigned long long>(k));
    for (const char* n : {"xM1", "xM2", "xM3", "xM4", "xM5", "xM6"})
      std::printf("%-10s ", engine.value(g.find(n), k)->to_string().c_str());
    std::printf(" %s\n", TimePoint::at_ps(step.y[0].value()).to_string().c_str());
  }

  // Steady state: the maximum cycle ratio bounds the sustainable rate.
  const auto bound = tdg::throughput_bound(
      g, [](model::SourceId, std::uint64_t) { return model::TokenAttrs{}; });
  std::printf("\nmax cycle ratio: %s per iteration => the architecture "
              "cannot sustain a faster input period\n",
              Duration::ps(static_cast<std::int64_t>(bound.max_ratio))
                  .to_string()
                  .c_str());

  // And the matrix view itself.
  std::printf("\nA(k,1) (history dependences):\n");
  // Rebuild A1 for display.
  mp::Matrix a1(ex.state_nodes.size(), ex.state_nodes.size());
  for (const tdg::Arc& a : g.arcs()) {
    if (a.lag != 1) continue;
    // state index lookup by scanning (display only).
    std::size_t si = 0, di = 0;
    for (std::size_t i = 0; i < ex.state_nodes.size(); ++i) {
      if (ex.state_nodes[i] == a.src) si = i;
      if (ex.state_nodes[i] == a.dst) di = i;
    }
    a1.at(di, si) = mp::Scalar::e();
  }
  std::printf("%s", a1.to_string().c_str());
  return 0;
}
