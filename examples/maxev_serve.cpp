/// \file maxev_serve.cpp
/// Evaluation-as-a-service front-end (docs/DESIGN.md §13): multiplexes
/// serve::Session instances over a line-delimited JSON protocol on
/// stdin/stdout — one request object per line in, one response per line
/// out (serve/protocol.hpp documents the verbs). All sessions share one
/// structural-hash program cache, so resubmitting an architecture skips
/// the derive → compile pipeline.
///
/// A second mode produces the reference the CI smoke test diffs streamed
/// results against:
///
///   maxev_serve --golden scenario.json tokens.json
///
/// runs the same scenario ONE-SHOT — stream sources replaced by full token
/// tables, evaluated directly on core::EquivalentModel without any session
/// machinery — and prints the complete traces in the poll-delta shape. The
/// paper's pinned horizon-resume contract says incremental serving must be
/// bit-identical to this.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/equivalent_model.hpp"
#include "gen/didactic.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"
#include "util/json.hpp"

namespace {

using namespace maxev;

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error("maxev_serve: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

model::TokenAttrs parse_attrs(const JsonValue& v) {
  model::TokenAttrs a;
  a.size = v.at("size").as_int64();
  const JsonValue& params = v.at("params");
  for (std::size_t i = 0; i < a.params.size(); ++i)
    a.params[i] = params[i].as_double();
  return a;
}

/// Serves stream-typed sources from the full token tables of a tokens
/// document — the one-shot stand-in for incremental feeding.
class TableFactory final : public serve::StreamSourceFactory {
 public:
  explicit TableFactory(const JsonValue& tokens_doc) {
    for (const JsonValue& s : tokens_doc.at("streams").items()) {
      const auto source = static_cast<std::size_t>(s.at("source").as_uint64());
      Tables& t = by_source_[source];
      for (const JsonValue& tok : s.at("tokens").items()) {
        t.earliest_ps.push_back(tok.at("earliest_ps").as_int64());
        const JsonValue* attrs = tok.find("attrs");
        t.attrs.push_back(attrs != nullptr && !attrs->is_null()
                              ? parse_attrs(*attrs)
                              : model::TokenAttrs{});
      }
    }
  }

  Fns make_stream_source(std::size_t source_index, const std::string& name,
                         std::uint64_t count) override {
    const auto it = by_source_.find(source_index);
    if (it == by_source_.end())
      throw Error("maxev_serve: no tokens for stream source '" + name + "'");
    if (it->second.earliest_ps.size() != count)
      throw Error("maxev_serve: stream source '" + name + "' declares " +
                  std::to_string(count) + " tokens, tokens file has " +
                  std::to_string(it->second.earliest_ps.size()));
    auto earliest = std::make_shared<const std::vector<std::int64_t>>(
        it->second.earliest_ps);
    auto attrs =
        std::make_shared<const std::vector<model::TokenAttrs>>(it->second.attrs);
    return Fns{serve::TableTimeFn{std::move(earliest)},
               serve::TableAttrsFn{std::move(attrs)}};
  }

 private:
  struct Tables {
    std::vector<std::int64_t> earliest_ps;
    std::vector<model::TokenAttrs> attrs;
  };
  std::map<std::size_t, Tables> by_source_;
};

/// One-shot reference run: full traces in the poll-delta shape.
int run_golden(const std::string& scenario_path,
               const std::string& tokens_path) {
  const JsonValue scenario = json_parse(slurp(scenario_path));
  TableFactory factory(json_parse(slurp(tokens_path)));
  model::ArchitectureDesc desc = serve::desc_from_json(scenario, &factory);

  core::EquivalentModel model(desc, /*group=*/{});
  const model::ModelRuntime::Outcome out = model.run();

  JsonWriter w;
  w.begin_object();
  w.field("ok", true);
  w.field("completed", out.completed);
  w.field("now_ps", model.end_time().count());
  w.key("instants").begin_array();
  for (const auto& [name, series] : model.instants().all()) {
    w.begin_object();
    w.field("series", name);
    w.field("start_k", std::uint64_t{0});
    w.key("instants_ps").begin_array();
    for (const TimePoint t : series.values()) w.value(t.count());
    w.end_array().end_object();
  }
  w.end_array();
  w.key("usage").begin_array();
  for (const auto& [name, trace] : model.usage().all()) {
    w.begin_object();
    w.field("resource", name);
    w.field("start_index", std::uint64_t{0});
    w.key("starts_ps").begin_array();
    for (const TimePoint t : trace.starts()) w.value(t.count());
    w.end_array();
    w.key("ends_ps").begin_array();
    for (const TimePoint t : trace.ends()) w.value(t.count());
    w.end_array();
    w.key("ops").begin_array();
    for (const std::int64_t n : trace.ops()) w.value(n);
    w.end_array();
    w.key("labels").begin_array();
    for (const auto id : trace.label_ids()) w.value(trace.label(id));
    w.end_array().end_object();
  }
  w.end_array();
  w.end_object();
  std::cout << w.str() << '\n';
  return 0;
}

/// Emit `{"scenario": ..., "tokens": ...}` for the paper's didactic
/// architecture with its source turned into a stream: the scenario document
/// declares `{"type":"stream"}` and the full token set (evaluated from the
/// generator's behavioural functions) moves into the tokens document. The
/// CI smoke test feeds the tokens incrementally and diffs against --golden.
int run_emit_demo() {
  gen::DidacticConfig cfg;
  cfg.tokens = 12;
  // Space the releases out so the stream watermark actually advances
  // between feed rounds (period 0 would block until fully fed).
  cfg.source_period = Duration::us(10);
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);
  const JsonValue doc = json_parse(serve::desc_to_json(desc));

  auto root = doc.members();
  auto d = root.at("desc").members();
  std::vector<JsonValue> sources;
  std::vector<JsonValue> streams;
  const auto& src_descs = desc.sources();
  const auto& arr = d.at("sources").items();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    auto s = arr[i].members();
    s["earliest"] =
        JsonValue::object({{"type", JsonValue::string("stream")}});
    s.erase("attrs");  // stream sources get attrs per fed token
    s.erase("gap");
    sources.push_back(JsonValue::object(std::move(s)));

    std::vector<JsonValue> toks;
    for (std::uint64_t k = 0; k < src_descs[i].count; ++k) {
      const model::TokenAttrs a =
          src_descs[i].attrs ? src_descs[i].attrs(k) : model::TokenAttrs{};
      std::vector<JsonValue> params;
      for (const double p : a.params) params.push_back(JsonValue::number(p));
      toks.push_back(JsonValue::object(
          {{"earliest_ps",
            JsonValue::integer(src_descs[i].earliest(k).count())},
           {"attrs",
            JsonValue::object(
                {{"size", JsonValue::integer(a.size)},
                 {"params", JsonValue::array(std::move(params))}})}}));
    }
    streams.push_back(JsonValue::object(
        {{"source", JsonValue::integer(static_cast<std::int64_t>(i))},
         {"tokens", JsonValue::array(std::move(toks))}}));
  }
  d["sources"] = JsonValue::array(std::move(sources));
  root["desc"] = JsonValue::object(std::move(d));

  const JsonValue out = JsonValue::object(
      {{"scenario", JsonValue::object(std::move(root))},
       {"tokens", JsonValue::object(
                      {{"streams", JsonValue::array(std::move(streams))}})}});
  std::cout << json_dump(out) << '\n';
  return 0;
}

int run_server() {
  serve::Server server;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << server.handle(line) << std::endl;  // flush: we are a pipe
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 4 && std::string(argv[1]) == "--golden")
      return run_golden(argv[2], argv[3]);
    if (argc == 2 && std::string(argv[1]) == "--emit-demo")
      return run_emit_demo();
    if (argc == 1) return run_server();
    std::fprintf(stderr,
                 "usage: %s                      serve stdin/stdout\n"
                 "       %s --golden S.json T.json   one-shot reference\n"
                 "       %s --emit-demo              demo scenario + tokens\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "maxev_serve: %s\n", e.what());
    return 1;
  }
}
