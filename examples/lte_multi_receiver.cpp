/// \file lte_multi_receiver.cpp
/// Multi-instance composition: a carrier-aggregation style sweep where N
/// LTE receiver instances — different component-carrier bandwidths and
/// platform sizings — run side by side in ONE simulation kernel
/// (study::compose). Trace labels are namespaced per instance
/// ("cc0/sym_in", "cc1/dsp", ...), so each instance's metrics stay
/// isolated: the report certifies the composed equivalent model is exact
/// against the composed baseline, and per-instance latency is read off the
/// namespaced traces.

#include <cstdio>
#include <string>
#include <vector>

#include "lte/receiver.hpp"
#include "lte/scenario.hpp"
#include "study/study.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace maxev;

  std::uint64_t symbols = 10 * lte::kSymbolsPerSubframe;
  int threads = 1;
  const auto usage = [&] {
    std::fprintf(stderr, "usage: %s [symbol-count] [--threads N]\n", argv[0]);
    return 2;
  };
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--threads") {
      const auto n = ++a < argc ? parse_count(argv[a]) : std::nullopt;
      if (!n) return usage();
      threads = static_cast<int>(*n);
    } else {
      const auto n = parse_count(arg.c_str());
      if (!n) return usage();
      symbols = *n;
    }
  }

  // Four component carriers: bandwidth (fixed PRB allocation) and platform
  // sizing vary per instance; each gets its own frame schedule.
  const std::vector<lte::CarrierVariant> carriers =
      lte::carrier_aggregation_variants(4, symbols);

  std::vector<study::Scenario> receivers;
  for (const lte::CarrierVariant& cc : carriers)
    receivers.emplace_back(cc.name, lte::make_receiver(cc.config));

  const study::Scenario aggregate = study::compose("ca4", receivers);
  std::printf("carrier aggregation: %zu receivers, %s symbols each, one "
              "kernel (%zu functions, %zu relations)\n\n",
              receivers.size(),
              with_commas(static_cast<std::int64_t>(symbols)).c_str(),
              aggregate.desc().functions().size(),
              aggregate.desc().channels().size());

  // The composed scenario through both backends: the report certifies that
  // all four receivers' instants stay exact inside the shared kernel, and
  // measures the aggregate speed-up. keep_traces retains the run's
  // observation traces so the per-instance analysis below needs no second
  // simulation.
  study::Study st;
  st.add(aggregate);
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());
  study::StudyOptions opts;
  opts.keep_traces = true;
  // Both parallelism levers (docs/DESIGN.md §11): measure the two backend
  // cells concurrently AND drain any equal-structure sub-batches of the
  // composed run on workers. Traces/report are identical at any setting.
  opts.threads = threads;
  opts.group_threads = threads;
  const study::Report report = st.run(opts);
  std::printf("%s\n", report.to_string().c_str());

  const study::Cell* eq = report.find("ca4", "equivalent");
  if (eq == nullptr || !eq->errors.has_value() || !eq->errors->exact()) {
    std::fprintf(stderr, "composed equivalent model is not exact\n");
    return 1;
  }

  // Per-instance isolation: each receiver's latency and DSP utilization,
  // extracted from the one composed run via the namespaced traces.
  const TimePoint end = eq->metrics.sim_end;
  ConsoleTable per_rx({"carrier", "PRB", "DSP (GOPS)", "worst latency (us)",
                       "DSP util"});
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    const std::string& name = receivers[i].name();
    const trace::InstantTraceSet instants =
        study::instance_instants(*eq->instants, name);
    const trace::UsageTraceSet usage = study::instance_usage(*eq->usage, name);
    const double worst_us = lte::worst_symbol_latency_us(instants);
    double util = 0.0;
    if (const trace::UsageTrace* dsp = usage.find("dsp"))
      util = dsp->utilization(end);
    per_rx.add_row({name, format("%d", carriers[i].n_prb),
                    format("%.0f", carriers[i].config.dsp_ops_per_second / 1e9),
                    format("%.1f", worst_us), format("%.0f%%", 100.0 * util)});
  }
  std::printf("%s\n", per_rx.render().c_str());
  std::printf("aggregate speed-up vs event-driven baseline: %.1fx "
              "(event ratio %.1f), instants exact per instance.\n",
              eq->speedup_vs_reference, eq->event_ratio_vs_reference);
  return 0;
}
