/// \file design_space.cpp
/// The use case the paper's introduction motivates: "performance and cost
/// of potential architectures have to be assessed early ... to allow
/// exploration of different architectures in acceptable time".
///
/// We sweep the LTE receiver's platform parameters — DSP rate and decoder
/// rate — through the study front-end: every candidate platform is one
/// study::Scenario, evaluated on the fast equivalent backend, with
/// end-to-end symbol latency and real-time feasibility read off the model's
/// observation traces. The speed-up of the method is what makes a sweep
/// like this cheap.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "lte/receiver.hpp"
#include "lte/scenario.hpp"
#include "study/study.hpp"
#include "util/strings.hpp"

namespace {

using namespace maxev;

struct Candidate {
  double dsp_gops;
  double decoder_gops;
};

struct Result {
  bool feasible = false;
  double worst_latency_us = 0.0;
  double dsp_util = 0.0;
};

study::Scenario make_scenario(const Candidate& c, std::uint64_t symbols) {
  lte::ReceiverConfig cfg;
  cfg.symbols = symbols;
  cfg.seed = 7;
  cfg.dsp_ops_per_second = c.dsp_gops * 1e9;
  cfg.decoder_ops_per_second = c.decoder_gops * 1e9;
  return study::Scenario(format("dsp%.0f/dec%.0f", c.dsp_gops, c.decoder_gops),
                         lte::make_receiver(cfg));
}

Result evaluate(const study::Scenario& scenario) {
  auto model = study::Backend::equivalent().instantiate(scenario);
  const auto outcome = model->run();
  Result r;
  if (!outcome.completed) return r;

  // Worst-case input-to-output latency over all symbols.
  r.worst_latency_us = lte::worst_symbol_latency_us(model->instants());
  // Feasible when the receiver keeps up: latency bounded by ~2 symbol
  // periods and the DSP fits the period.
  const lte::Feasibility f = lte::dsp_feasibility(model->usage());
  r.feasible = f.feasible && r.worst_latency_us < 2.0 * f.symbol_period_us;
  if (const trace::UsageTrace* dsp = model->usage().find("dsp"))
    r.dsp_util = dsp->utilization(model->end_time());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t symbols = 20 * lte::kSymbolsPerSubframe;
  if (argc > 1) {
    const auto n = parse_count(argv[1]);
    if (!n) {
      std::fprintf(stderr, "usage: %s [symbol-count]\n", argv[0]);
      return 2;
    }
    symbols = *n;
  }
  const Candidate candidates[] = {
      {4, 75},  {6, 75},  {8, 75},  {10, 75},
      {4, 150}, {6, 150}, {8, 150}, {10, 150}, {12, 300},
  };

  std::printf("Design-space exploration: LTE receiver platform sizing\n");
  std::printf("(each candidate scenario evaluated on the equivalent backend, "
              "%s symbols)\n\n",
              with_commas(static_cast<std::int64_t>(symbols)).c_str());

  const auto t0 = std::chrono::steady_clock::now();
  ConsoleTable table({"DSP (GOPS)", "decoder (GOPS)", "worst latency (us)",
                      "DSP util", "verdict"});
  const Candidate* best = nullptr;
  double best_cost = 1e300;
  Result best_result;
  for (const Candidate& c : candidates) {
    const Result r = evaluate(make_scenario(c, symbols));
    // A crude platform cost: area ~ rate.
    const double cost = c.dsp_gops + 0.2 * c.decoder_gops;
    table.add_row({format("%.0f", c.dsp_gops), format("%.0f", c.decoder_gops),
                   r.feasible ? format("%.1f", r.worst_latency_us) : "-",
                   format("%.0f%%", 100.0 * r.dsp_util),
                   r.feasible ? "feasible" : "infeasible"});
    if (r.feasible && cost < best_cost) {
      best_cost = cost;
      best = &c;
      best_result = r;
    }
  }
  const double sweep_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%s\n", table.render().c_str());
  if (best != nullptr) {
    std::printf("cheapest feasible platform: DSP %.0f GOPS + decoder %.0f "
                "GOPS (worst latency %.1fus)\n",
                best->dsp_gops, best->decoder_gops,
                best_result.worst_latency_us);

    // How much did the fast backend buy us? Re-run the winner as a
    // two-backend study: the report carries the speed-up and certifies the
    // equivalent model's instants are exact.
    study::Scenario winner = make_scenario(*best, symbols);
    const std::string winner_name = winner.name();
    study::Study st;
    st.add(std::move(winner));
    st.add(study::Backend::baseline());
    st.add(study::Backend::equivalent());
    const study::Report report = st.run();
    const study::Cell& eq = report.at(winner_name, "equivalent");
    std::printf("winner cross-check: equivalent backend %.1fx faster than "
                "the baseline, instants %s.\n",
                eq.speedup_vs_reference,
                eq.errors.has_value() && eq.errors->exact() ? "exact"
                                                            : "NOT exact");
  }
  std::printf("entire sweep took %.2fs of wall-clock time.\n", sweep_secs);
  return 0;
}
