/// \file design_space.cpp
/// The use case the paper's introduction motivates: "performance and cost
/// of potential architectures have to be assessed early ... to allow
/// exploration of different architectures in acceptable time".
///
/// We sweep the LTE receiver's platform parameters — DSP rate and decoder
/// rate — and, for each candidate platform, use the fast equivalent model
/// to evaluate end-to-end symbol latency and real-time feasibility. The
/// speed-up of the method is what makes a sweep like this cheap.

#include <chrono>
#include <cstdio>

#include "core/equivalent_model.hpp"
#include "lte/receiver.hpp"
#include "lte/scenario.hpp"
#include "util/strings.hpp"

namespace {

using namespace maxev;

struct Candidate {
  double dsp_gops;
  double decoder_gops;
};

struct Result {
  bool feasible = false;
  double worst_latency_us = 0.0;
  double dsp_util = 0.0;
};

Result evaluate(const Candidate& c, std::uint64_t symbols) {
  lte::ReceiverConfig cfg;
  cfg.symbols = symbols;
  cfg.seed = 7;
  cfg.dsp_ops_per_second = c.dsp_gops * 1e9;
  cfg.decoder_ops_per_second = c.decoder_gops * 1e9;
  const model::ArchitectureDesc desc = lte::make_receiver(cfg);

  core::EquivalentModel eq(desc, {});
  const auto outcome = eq.run();
  Result r;
  if (!outcome.completed) return r;

  // Worst-case input-to-output latency over all symbols.
  const trace::InstantSeries* u = eq.instants().find("sym_in");
  const trace::InstantSeries* y = eq.instants().find("dec_out");
  for (std::size_t k = 0; k < y->size(); ++k) {
    r.worst_latency_us = std::max(
        r.worst_latency_us, (y->values()[k] - u->values()[k]).micros());
  }
  // Feasible when the receiver keeps up: latency bounded by ~2 symbol
  // periods and the DSP fits the period.
  const lte::Feasibility f = lte::dsp_feasibility(eq.usage());
  r.feasible = f.feasible && r.worst_latency_us < 2.0 * f.symbol_period_us;
  if (const trace::UsageTrace* dsp = eq.usage().find("dsp"))
    r.dsp_util = dsp->utilization(eq.end_time());
  return r;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSymbols = 20 * lte::kSymbolsPerSubframe;
  const Candidate candidates[] = {
      {4, 75},  {6, 75},  {8, 75},  {10, 75},
      {4, 150}, {6, 150}, {8, 150}, {10, 150}, {12, 300},
  };

  std::printf("Design-space exploration: LTE receiver platform sizing\n");
  std::printf("(each candidate evaluated with the equivalent model, %s "
              "symbols)\n\n",
              with_commas(static_cast<std::int64_t>(kSymbols)).c_str());

  const auto t0 = std::chrono::steady_clock::now();
  ConsoleTable table({"DSP (GOPS)", "decoder (GOPS)", "worst latency (us)",
                      "DSP util", "verdict"});
  const Candidate* best = nullptr;
  double best_cost = 1e300;
  Result best_result;
  for (const Candidate& c : candidates) {
    const Result r = evaluate(c, kSymbols);
    // A crude platform cost: area ~ rate.
    const double cost = c.dsp_gops + 0.2 * c.decoder_gops;
    table.add_row({format("%.0f", c.dsp_gops), format("%.0f", c.decoder_gops),
                   r.feasible ? format("%.1f", r.worst_latency_us) : "-",
                   format("%.0f%%", 100.0 * r.dsp_util),
                   r.feasible ? (cost < best_cost ? "feasible" : "feasible")
                              : "infeasible"});
    if (r.feasible && cost < best_cost) {
      best_cost = cost;
      best = &c;
      best_result = r;
    }
  }
  const double sweep_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%s\n", table.render().c_str());
  if (best != nullptr) {
    std::printf("cheapest feasible platform: DSP %.0f GOPS + decoder %.0f "
                "GOPS (worst latency %.1fus)\n",
                best->dsp_gops, best->decoder_gops,
                best_result.worst_latency_us);
  }
  std::printf("entire sweep took %.2fs of wall-clock time.\n", sweep_secs);
  return 0;
}
