/// \file design_space.cpp
/// The use case the paper's introduction motivates: "performance and cost
/// of potential architectures have to be assessed early ... to allow
/// exploration of different architectures in acceptable time".
///
/// We sweep the LTE receiver's platform parameters — DSP rate and decoder
/// rate — through the study front-end: every candidate platform is one
/// study::Scenario, evaluated on the fast equivalent backend, with
/// end-to-end symbol latency and real-time feasibility read off the model's
/// observation traces. The speed-up of the method is what makes a sweep
/// like this cheap.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "lte/receiver.hpp"
#include "lte/scenario.hpp"
#include "study/study.hpp"
#include "util/strings.hpp"

namespace {

using namespace maxev;

struct Candidate {
  double dsp_gops;
  double decoder_gops;
};

struct Result {
  bool feasible = false;
  double worst_latency_us = 0.0;
  double dsp_util = 0.0;
};

study::Scenario make_scenario(const Candidate& c, std::uint64_t symbols) {
  lte::ReceiverConfig cfg;
  cfg.symbols = symbols;
  cfg.seed = 7;
  cfg.dsp_ops_per_second = c.dsp_gops * 1e9;
  cfg.decoder_ops_per_second = c.decoder_gops * 1e9;
  return study::Scenario(format("dsp%.0f/dec%.0f", c.dsp_gops, c.decoder_gops),
                         lte::make_receiver(cfg));
}

/// Read one candidate's verdict off its retained study traces (keep_traces).
Result evaluate(const study::Cell& cell) {
  Result r;
  if (!cell.metrics.completed || !cell.instants || !cell.usage) return r;

  // Worst-case input-to-output latency over all symbols.
  r.worst_latency_us = lte::worst_symbol_latency_us(*cell.instants);
  // Feasible when the receiver keeps up: latency bounded by ~2 symbol
  // periods and the DSP fits the period.
  const lte::Feasibility f = lte::dsp_feasibility(*cell.usage);
  r.feasible = f.feasible && r.worst_latency_us < 2.0 * f.symbol_period_us;
  if (const trace::UsageTrace* dsp = cell.usage->find("dsp"))
    r.dsp_util = dsp->utilization(cell.metrics.sim_end);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t symbols = 20 * lte::kSymbolsPerSubframe;
  int threads = 1;
  std::uint64_t max_events = 0;
  double deadline_ms = 0.0;
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s [symbol-count] [--threads N] [--max-events N] "
                 "[--deadline-ms X]\n",
                 argv[0]);
    return 2;
  };
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--threads") {
      const auto n = ++a < argc ? maxev::parse_count(argv[a]) : std::nullopt;
      if (!n) return usage();
      threads = static_cast<int>(*n);
    } else if (arg == "--max-events") {
      const auto n = ++a < argc ? maxev::parse_count(argv[a]) : std::nullopt;
      if (!n) return usage();
      max_events = *n;
    } else if (arg == "--deadline-ms") {
      if (++a >= argc) return usage();
      char* end = nullptr;
      deadline_ms = std::strtod(argv[a], &end);
      if (end == argv[a] || *end != '\0' || deadline_ms < 0) return usage();
    } else {
      const auto n = maxev::parse_count(arg.c_str());
      if (!n) return usage();
      symbols = *n;
    }
  }
  const Candidate candidates[] = {
      {4, 75},  {6, 75},  {8, 75},  {10, 75},
      {4, 150}, {6, 150}, {8, 150}, {10, 150}, {12, 300},
  };

  std::printf("Design-space exploration: LTE receiver platform sizing\n");
  std::printf("(each candidate scenario evaluated on the equivalent backend, "
              "%s symbols, %d thread%s)\n\n",
              with_commas(static_cast<std::int64_t>(symbols)).c_str(), threads,
              threads == 1 ? "" : "s");

  // The whole sweep as ONE study matrix (candidates × equivalent backend):
  // --threads measures the cells concurrently, and keep_traces retains
  // each candidate's observation traces so the feasibility analysis below
  // needs no second simulation.
  const auto t0 = std::chrono::steady_clock::now();
  study::Study sweep;
  for (const Candidate& c : candidates) sweep.add(make_scenario(c, symbols));
  sweep.add(study::Backend::equivalent());
  study::StudyOptions sweep_opts;
  sweep_opts.keep_traces = true;
  sweep_opts.require_completion = false;  // infeasible candidates may stall
  sweep_opts.threads = threads;
  // Run guards (--max-events / --deadline-ms): bound every candidate's
  // run, and isolate a tripped guard into a failed cell instead of
  // aborting the sweep.
  sweep_opts.max_events = max_events;
  sweep_opts.deadline_ms = deadline_ms;
  if (max_events != 0 || deadline_ms > 0) sweep_opts.isolate_failures = true;
  const study::Report sweep_report = sweep.run(sweep_opts);
  const double sweep_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ConsoleTable table({"DSP (GOPS)", "decoder (GOPS)", "worst latency (us)",
                      "DSP util", "verdict"});
  const Candidate* best = nullptr;
  double best_cost = 1e300;
  Result best_result;
  for (const Candidate& c : candidates) {
    const study::Cell& cell = sweep_report.at(
        format("dsp%.0f/dec%.0f", c.dsp_gops, c.decoder_gops), "equivalent");
    const Result r = evaluate(cell);
    // A crude platform cost: area ~ rate.
    const double cost = c.dsp_gops + 0.2 * c.decoder_gops;
    table.add_row({format("%.0f", c.dsp_gops), format("%.0f", c.decoder_gops),
                   r.feasible ? format("%.1f", r.worst_latency_us) : "-",
                   format("%.0f%%", 100.0 * r.dsp_util),
                   r.feasible ? "feasible" : "infeasible"});
    if (r.feasible && cost < best_cost) {
      best_cost = cost;
      best = &c;
      best_result = r;
    }
  }

  std::printf("%s\n", table.render().c_str());
  if (best != nullptr) {
    std::printf("cheapest feasible platform: DSP %.0f GOPS + decoder %.0f "
                "GOPS (worst latency %.1fus)\n",
                best->dsp_gops, best->decoder_gops,
                best_result.worst_latency_us);

    // How much did the fast backend buy us? Re-run the winner as a
    // two-backend study: the report carries the speed-up and certifies the
    // equivalent model's instants are exact.
    study::Scenario winner = make_scenario(*best, symbols);
    const std::string winner_name = winner.name();
    study::Study st;
    st.add(std::move(winner));
    st.add(study::Backend::baseline());
    st.add(study::Backend::equivalent());
    study::StudyOptions check_opts;
    check_opts.threads = threads;
    const study::Report report = st.run(check_opts);
    const study::Cell& eq = report.at(winner_name, "equivalent");
    std::printf("winner cross-check: equivalent backend %.1fx faster than "
                "the baseline, instants %s.\n",
                eq.speedup_vs_reference,
                eq.errors.has_value() && eq.errors->exact() ? "exact"
                                                            : "NOT exact");
  }
  std::printf("entire sweep took %.2fs of wall-clock time.\n", sweep_secs);
  return 0;
}
