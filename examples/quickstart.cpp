/// \file quickstart.cpp
/// Five-minute tour of the library on the paper's didactic example
/// (Fig. 1): describe an architecture once, wrap it in a study::Scenario,
/// and run it through the three execution backends — event-driven baseline,
/// equivalent model with dynamically computed evolution instants, and the
/// loosely-timed foil — getting identical instants from the equivalent
/// model several times faster.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/didactic.hpp"
#include "study/study.hpp"
#include "tdg/derive.hpp"
#include "tdg/export.hpp"
#include "tdg/simplify.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace maxev;
  using namespace maxev::literals;

  // 1. One architecture description: 4 functions on 2 resources, fed by a
  //    source with data-size-dependent execution times. An optional argv[1]
  //    bounds the workload (CI smoke runs use a small count).
  gen::DidacticConfig cfg;
  cfg.tokens = 5000;
  std::uint64_t max_events = 0;
  double deadline_ms = 0.0;
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s [token-count] [--max-events N] [--deadline-ms X]\n",
                 argv[0]);
    return 2;
  };
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--max-events") {
      const auto n = ++a < argc ? parse_count(argv[a]) : std::nullopt;
      if (!n) return usage();
      max_events = *n;
    } else if (arg == "--deadline-ms") {
      if (++a >= argc) return usage();
      char* end = nullptr;
      deadline_ms = std::strtod(argv[a], &end);
      if (end == argv[a] || *end != '\0' || deadline_ms < 0) return usage();
    } else {
      const auto n = parse_count(arg.c_str());
      if (!n) return usage();
      cfg.tokens = *n;
    }
  }
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);
  std::printf("architecture: %zu functions, %zu relations, %zu resources\n",
              desc.functions().size(), desc.channels().size(),
              desc.resources().size());

  // 2. The automatically derived temporal dependency graph (paper Fig. 3).
  tdg::DerivedTdg derived = tdg::derive_full_tdg(desc);
  tdg::Graph graph = tdg::fold_pass_through(derived.graph);
  std::printf("derived TDG : %zu nodes (%zu with history references)\n\n",
              graph.node_count(), graph.paper_node_count());
  graph.freeze();
  std::printf("%s\n", tdg::to_dot(graph).c_str());

  // 3. A scenario (what to evaluate) times a set of backends (how to
  //    evaluate it). The baseline is the reference: every other backend's
  //    evolution instants are compared against it, exactly.
  study::Study st;
  st.add(study::Scenario("didactic", desc));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());
  st.add(study::Backend::loosely_timed(10_us));

  study::StudyOptions opts;
  opts.repetitions = 3;
  // Optional run guards (--max-events / --deadline-ms): bound each cell's
  // run and report a tripped guard as a failed cell instead of aborting.
  opts.max_events = max_events;
  opts.deadline_ms = deadline_ms;
  if (max_events != 0 || deadline_ms > 0) opts.isolate_failures = true;
  const study::Report report = st.run(opts);
  std::printf("%s\n", report.to_string().c_str());

  // 4. The paper's claims, read off the report: the equivalent model is
  //    exact (identical instants) and faster; temporal decoupling is fast
  //    but pays with timing error.
  const study::Cell* eq = report.find("didactic", "equivalent");
  const study::Cell* lt = report.find("didactic", "lt(10us)");
  if (eq == nullptr || !eq->errors.has_value() || !eq->errors->exact())
    return 1;
  std::printf(
      "\nequivalent model: same evolution instants, %.1fx faster, %.1fx "
      "fewer relation events.\n",
      eq->speedup_vs_reference, eq->event_ratio_vs_reference);
  if (lt != nullptr && lt->errors.has_value()) {
    std::printf("loosely-timed (10us quantum): max instant error %.1fus — "
                "the trade-off the paper's method avoids.\n",
                lt->errors->max_abs_seconds * 1e6);
  }
  return 0;
}
