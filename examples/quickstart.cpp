/// \file quickstart.cpp
/// Five-minute tour of the library on the paper's didactic example
/// (Fig. 1): describe an architecture once, run it event-driven, run it as
/// an equivalent model with dynamically computed evolution instants, and
/// check that you got the same instants several times faster.

#include <cstdio>

#include "core/experiment.hpp"
#include "gen/didactic.hpp"
#include "tdg/derive.hpp"
#include "tdg/export.hpp"
#include "tdg/simplify.hpp"
#include "util/strings.hpp"

int main() {
  using namespace maxev;

  // 1. One architecture description: 4 functions on 2 resources, fed by a
  //    source with data-size-dependent execution times.
  gen::DidacticConfig cfg;
  cfg.tokens = 5000;
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);
  std::printf("architecture: %zu functions, %zu relations, %zu resources\n",
              desc.functions().size(), desc.channels().size(),
              desc.resources().size());

  // 2. The automatically derived temporal dependency graph (paper Fig. 3).
  tdg::DerivedTdg derived = tdg::derive_full_tdg(desc);
  tdg::Graph graph = tdg::fold_pass_through(derived.graph);
  std::printf("derived TDG : %zu nodes (%zu with history references)\n\n",
              graph.node_count(), graph.paper_node_count());
  graph.freeze();
  std::printf("%s\n", tdg::to_dot(graph).c_str());

  // 3. Paired run: event-driven baseline vs equivalent model.
  core::ExperimentOptions opts;
  opts.repetitions = 3;
  const core::Comparison cmp = core::run_comparison(desc, opts);

  std::printf("baseline   : %s\n", cmp.baseline.to_string().c_str());
  std::printf("equivalent : %s\n", cmp.equivalent.to_string().c_str());
  std::printf("\n%s\n", cmp.to_string().c_str());

  if (!cmp.accurate()) return 1;
  std::printf("\nsame evolution instants, %.1fx faster, %.1fx fewer relation "
              "events.\n",
              cmp.speedup, cmp.event_ratio);
  return 0;
}
