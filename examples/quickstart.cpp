/// \file quickstart.cpp
/// Five-minute tour of the library on the paper's didactic example
/// (Fig. 1): describe an architecture once, wrap it in a study::Scenario,
/// and run it through the three execution backends — event-driven baseline,
/// equivalent model with dynamically computed evolution instants, and the
/// loosely-timed foil — getting identical instants from the equivalent
/// model several times faster.

#include <cstdio>

#include "gen/didactic.hpp"
#include "study/study.hpp"
#include "tdg/derive.hpp"
#include "tdg/export.hpp"
#include "tdg/simplify.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace maxev;
  using namespace maxev::literals;

  // 1. One architecture description: 4 functions on 2 resources, fed by a
  //    source with data-size-dependent execution times. An optional argv[1]
  //    bounds the workload (CI smoke runs use a small count).
  gen::DidacticConfig cfg;
  cfg.tokens = 5000;
  if (argc > 1) {
    const auto n = parse_count(argv[1]);
    if (!n) {
      std::fprintf(stderr, "usage: %s [token-count]\n", argv[0]);
      return 2;
    }
    cfg.tokens = *n;
  }
  const model::ArchitectureDesc desc = gen::make_didactic(cfg);
  std::printf("architecture: %zu functions, %zu relations, %zu resources\n",
              desc.functions().size(), desc.channels().size(),
              desc.resources().size());

  // 2. The automatically derived temporal dependency graph (paper Fig. 3).
  tdg::DerivedTdg derived = tdg::derive_full_tdg(desc);
  tdg::Graph graph = tdg::fold_pass_through(derived.graph);
  std::printf("derived TDG : %zu nodes (%zu with history references)\n\n",
              graph.node_count(), graph.paper_node_count());
  graph.freeze();
  std::printf("%s\n", tdg::to_dot(graph).c_str());

  // 3. A scenario (what to evaluate) times a set of backends (how to
  //    evaluate it). The baseline is the reference: every other backend's
  //    evolution instants are compared against it, exactly.
  study::Study st;
  st.add(study::Scenario("didactic", desc));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());
  st.add(study::Backend::loosely_timed(10_us));

  study::StudyOptions opts;
  opts.repetitions = 3;
  const study::Report report = st.run(opts);
  std::printf("%s\n", report.to_string().c_str());

  // 4. The paper's claims, read off the report: the equivalent model is
  //    exact (identical instants) and faster; temporal decoupling is fast
  //    but pays with timing error.
  const study::Cell* eq = report.find("didactic", "equivalent");
  const study::Cell* lt = report.find("didactic", "lt(10us)");
  if (eq == nullptr || !eq->errors.has_value() || !eq->errors->exact())
    return 1;
  std::printf(
      "\nequivalent model: same evolution instants, %.1fx faster, %.1fx "
      "fewer relation events.\n",
      eq->speedup_vs_reference, eq->event_ratio_vs_reference);
  if (lt != nullptr && lt->errors.has_value()) {
    std::printf("loosely-timed (10us quantum): max instant error %.1fus — "
                "the trade-off the paper's method avoids.\n",
                lt->errors->max_abs_seconds * 1e6);
  }
  return 0;
}
