/// \file lte_receiver.cpp
/// The paper's Section V case study as an application: analyze the
/// processing-resource usage of an LTE physical-layer receiver under
/// varying frame parameters, using the fast equivalent model for the
/// simulation and the observation-time traces for the analysis.

#include <cstdio>

#include "core/equivalent_model.hpp"
#include "lte/receiver.hpp"
#include "lte/scenario.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace maxev;

  // 50 subframes with per-frame varying PRB allocation and modulation
  // (argv[1] overrides the symbol count; CI smoke runs use a small one).
  lte::ReceiverConfig cfg;
  cfg.symbols = 50 * lte::kSymbolsPerSubframe;
  if (argc > 1) {
    const auto n = parse_count(argv[1]);
    if (!n) {
      std::fprintf(stderr, "usage: %s [symbol-count]\n", argv[0]);
      return 2;
    }
    cfg.symbols = *n;
  }
  cfg.seed = 42;
  const model::ArchitectureDesc desc = lte::make_receiver(cfg);

  core::EquivalentModel eq(desc, {});
  const auto outcome = eq.run();
  if (!outcome.completed) {
    std::fprintf(stderr, "stall: %s\n", outcome.stall_report.c_str());
    return 1;
  }

  std::printf("simulated %s symbols in %s of simulated time\n",
              with_commas(static_cast<std::int64_t>(cfg.symbols)).c_str(),
              eq.end_time().to_string().c_str());
  std::printf("kernel events: %s (the abstracted receiver chain generates "
              "none internally)\n\n",
              with_commas(static_cast<std::int64_t>(
                  eq.kernel_stats().events_scheduled)).c_str());

  // Resource usage from the observation-time traces.
  const trace::UsageTrace* dsp = eq.usage().find("dsp");
  const trace::UsageTrace* dec = eq.usage().find("turbo_dec");
  ConsoleTable table({"resource", "busy time", "utilization", "total ops",
                      "intervals"});
  for (const trace::UsageTrace* t : {dsp, dec}) {
    table.add_row({t->resource(), t->busy_time().to_string(),
                   format("%.1f%%", 100.0 * t->utilization(eq.end_time())),
                   with_commas(t->total_ops()),
                   with_commas(static_cast<std::int64_t>(t->size()))});
  }
  std::printf("%s\n", table.render().c_str());

  // Worst-case per-symbol demand (real-time feasibility).
  const lte::Feasibility feas = lte::dsp_feasibility(eq.usage());
  std::printf("%s\n", feas.to_string().c_str());

  // Per-symbol GOPS of the first two subframes (Fig. 6-style view).
  const lte::SymbolGops gops = lte::per_symbol_gops(eq.usage());
  std::printf("\nDSP GOPS, first 28 symbol periods:\n  ");
  for (std::size_t s = 0; s < 28 && s < gops.dsp.size(); ++s)
    std::printf("%.1f ", gops.dsp[s].gops);
  std::printf("\ndecoder GOPS, first 28 symbol periods:\n  ");
  for (std::size_t s = 0; s < 28 && s < gops.decoder.size(); ++s)
    std::printf("%.1f ", gops.decoder[s].gops);
  std::printf("\n");
  return 0;
}
