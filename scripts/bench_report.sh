#!/usr/bin/env bash
# Produce the next BENCH_<n>.json of the repo's performance trajectory.
#
# Builds the bench binaries in Release mode, runs bench_ablation with its
# --json mode (key metrics: native ns/event, ns/token/node pad sweep,
# speed-up sweep, instances computed) and, when google-benchmark is
# available, bench_micro into a sibling BENCH_<n>.micro.json.
#
# Environment:
#   BUILD_DIR  build tree to (re)use          [default: build-bench]
#   OUT_DIR    where BENCH_<n>.json is placed [default: repo root]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-bench}"
OUT_DIR="${OUT_DIR:-.}"

if command -v ninja >/dev/null 2>&1; then
  export CMAKE_GENERATOR="${CMAKE_GENERATOR:-Ninja}"
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DMAXEV_BUILD_TESTS=OFF \
  -DMAXEV_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_ablation >/dev/null
# bench_micro is skipped by CMake when google-benchmark is absent.
cmake --build "$BUILD_DIR" -j --target bench_micro >/dev/null 2>&1 || true

n=0
while [ -e "$OUT_DIR/BENCH_$n.json" ]; do n=$((n + 1)); done

out="$OUT_DIR/BENCH_$n.json"
if ! "$BUILD_DIR/bench_ablation" --json "$out"; then
  echo "bench_report: bench_ablation failed; removing partial '$out'" >&2
  rm -f "$out"
  exit 1
fi
# Never leave a malformed trajectory entry behind: bench_diff.py and the
# CI summary both parse it. Exit 4 mirrors bench_diff's malformed code.
if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$out"; then
  echo "bench_report: '$out' is not valid JSON; removing it" >&2
  rm -f "$out"
  exit 4
fi
if [ -x "$BUILD_DIR/bench_micro" ]; then
  "$BUILD_DIR/bench_micro" --json "$OUT_DIR/BENCH_$n.micro.json"
fi

echo "bench trajectory entry: $out"
