#!/usr/bin/env bash
# Produce the next BENCH_<n>.json of the repo's performance trajectory.
#
# Builds the bench binaries in Release mode, runs bench_ablation with its
# --json mode (key metrics: native ns/event, ns/token/node pad sweep,
# speed-up sweep, instances computed) and, when google-benchmark is
# available, bench_micro into a sibling BENCH_<n>.micro.json.
#
# Environment:
#   BUILD_DIR  build tree to (re)use          [default: build-bench]
#   OUT_DIR    where BENCH_<n>.json is placed [default: repo root]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-bench}"
OUT_DIR="${OUT_DIR:-.}"

if command -v ninja >/dev/null 2>&1; then
  export CMAKE_GENERATOR="${CMAKE_GENERATOR:-Ninja}"
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DMAXEV_BUILD_TESTS=OFF \
  -DMAXEV_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_ablation >/dev/null
# bench_micro is skipped by CMake when google-benchmark is absent.
cmake --build "$BUILD_DIR" -j --target bench_micro >/dev/null 2>&1 || true

n=0
while [ -e "$OUT_DIR/BENCH_$n.json" ]; do n=$((n + 1)); done

out="$OUT_DIR/BENCH_$n.json"
if ! "$BUILD_DIR/bench_ablation" --json "$out"; then
  echo "bench_report: bench_ablation failed; removing partial '$out'" >&2
  rm -f "$out"
  exit 1
fi
# Never leave a malformed trajectory entry behind: bench_diff.py and the
# CI summary both parse it. Exit 4 mirrors bench_diff's malformed code.
if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$out"; then
  echo "bench_report: '$out' is not valid JSON; removing it" >&2
  rm -f "$out"
  exit 4
fi
# Stamp provenance into the entry: which commit and machine produced the
# numbers (shared-runner timings are only comparable with this context).
if ! python3 - "$out" <<'PY'
import json, os, subprocess, sys, datetime

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

meta = doc.setdefault("meta", {})
try:
    meta["git_sha"] = subprocess.run(
        ["git", "rev-parse", "HEAD"], capture_output=True, text=True, check=True
    ).stdout.strip()
except (OSError, subprocess.CalledProcessError):
    meta["git_sha"] = "unknown"
meta["date"] = datetime.datetime.now(datetime.timezone.utc).strftime(
    "%Y-%m-%dT%H:%M:%SZ"
)
meta["hardware_threads"] = os.cpu_count() or 0

with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY
then
  echo "bench_report: failed to stamp metadata into '$out'; removing it" >&2
  rm -f "$out"
  exit 4
fi
if [ -x "$BUILD_DIR/bench_micro" ]; then
  "$BUILD_DIR/bench_micro" --json "$OUT_DIR/BENCH_$n.micro.json"
fi

echo "bench trajectory entry: $out"
