#!/usr/bin/env python3
"""End-to-end smoke test of the maxev_serve protocol.

Usage: serve_smoke.py [path/to/maxev_serve]

Drives the serving binary through its line-delimited JSON protocol:

  1. `--emit-demo` produces the didactic scenario with a stream-typed
     source plus the full token set.
  2. `--golden` runs the same scenario ONE-SHOT (token tables, no session
     machinery) and prints the complete traces.
  3. The protocol run submits the scenario, feeds the tokens across
     several feed/poll rounds, checkpoints mid-stream, restores the
     checkpoint into a fresh session, and finishes feeding there.

The accumulated poll deltas (original session up to the checkpoint, the
restored session after it) must reassemble, instant for instant and busy
interval for busy interval, into exactly the golden traces — the paper's
bit-identical resume contract, exercised across a serialization boundary.

Exit code 0 on success; 1 with a diff summary otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

ROUNDS = 4  # feed/poll rounds; the checkpoint happens after round 2


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Server:
    """One maxev_serve process driven line-by-line."""

    def __init__(self, binary):
        self.proc = subprocess.Popen(
            [binary], stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True
        )

    def request(self, obj, expect_ok=True):
        self.proc.stdin.write(json.dumps(obj) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        if not line:
            fail(f"server died on request {obj.get('cmd')}")
        reply = json.loads(line)
        if expect_ok and not reply.get("ok"):
            fail(f"request {obj.get('cmd')} failed: {reply.get('error')}")
        return reply

    def close(self):
        self.proc.stdin.close()
        self.proc.wait(timeout=30)


def accumulate(state, delta):
    """Fold one poll delta into {series: [instants]} / {resource: columns}."""
    for s in delta["instants"]:
        arr = state["instants"].setdefault(s["series"], [])
        if s["start_k"] != len(arr):
            fail(
                f"series {s['series']}: delta starts at k={s['start_k']}, "
                f"have {len(arr)} instants"
            )
        arr.extend(s["instants_ps"])
    for u in delta["usage"]:
        cols = state["usage"].setdefault(
            u["resource"],
            {"starts_ps": [], "ends_ps": [], "ops": [], "labels": []},
        )
        if u["start_index"] != len(cols["starts_ps"]):
            fail(
                f"resource {u['resource']}: delta starts at "
                f"{u['start_index']}, have {len(cols['starts_ps'])}"
            )
        for key in ("starts_ps", "ends_ps", "ops", "labels"):
            cols[key].extend(u[key])


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else "./build/maxev_serve"
    if not os.path.exists(binary):
        fail(f"binary not found: {binary}")

    demo = json.loads(
        subprocess.run(
            [binary, "--emit-demo"], check=True, capture_output=True, text=True
        ).stdout
    )
    scenario, tokens = demo["scenario"], demo["tokens"]

    with tempfile.TemporaryDirectory() as tmp:
        spath = os.path.join(tmp, "scenario.json")
        tpath = os.path.join(tmp, "tokens.json")
        with open(spath, "w") as f:
            json.dump(scenario, f)
        with open(tpath, "w") as f:
            json.dump(tokens, f)
        golden = json.loads(
            subprocess.run(
                [binary, "--golden", spath, tpath],
                check=True,
                capture_output=True,
                text=True,
            ).stdout
        )

    # Split every stream's tokens into ROUNDS contiguous chunks.
    chunks = []  # [round][stream] -> (source, tokens)
    for r in range(ROUNDS):
        per_round = []
        for stream in tokens["streams"]:
            toks = stream["tokens"]
            lo = len(toks) * r // ROUNDS
            hi = len(toks) * (r + 1) // ROUNDS
            per_round.append((stream["source"], toks[lo:hi]))
        chunks.append(per_round)

    state = {"instants": {}, "usage": {}}
    server = Server(binary)
    sub = server.request(
        {"cmd": "submit", "session": "smoke", "scenario": scenario}
    )
    if not sub["stream_sources"]:
        fail("submitted scenario has no stream sources")

    polls = 0
    for r in range(ROUNDS):
        for source, toks in chunks[r]:
            if toks:
                server.request(
                    {
                        "cmd": "feed",
                        "session": "smoke",
                        "source": source,
                        "tokens": toks,
                    }
                )
        delta = server.request({"cmd": "poll", "session": "smoke"})
        accumulate(state, delta)
        polls += 1

        if r == 1:  # checkpoint mid-stream, restore into a fresh session
            ckpt = server.request({"cmd": "checkpoint", "session": "smoke"})
            server.request({"cmd": "close", "session": "smoke"})
            server.request(
                {
                    "cmd": "restore",
                    "session": "smoke",
                    "checkpoint": ckpt["checkpoint"],
                }
            )

    # Every stream is fully fed now: a final poll runs to completion.
    delta = server.request({"cmd": "poll", "session": "smoke"})
    accumulate(state, delta)
    polls += 1
    if not delta["completed"]:
        fail(f"scenario did not complete (stop={delta['stop']})")
    stats = server.request({"cmd": "stats"})
    server.request({"cmd": "close", "session": "smoke"})
    server.close()

    golden_instants = {
        s["series"]: s["instants_ps"] for s in golden["instants"]
    }
    golden_usage = {
        u["resource"]: {
            k: u[k] for k in ("starts_ps", "ends_ps", "ops", "labels")
        }
        for u in golden["usage"]
    }
    if state["instants"] != golden_instants:
        for name in sorted(set(state["instants"]) | set(golden_instants)):
            got = state["instants"].get(name)
            want = golden_instants.get(name)
            if got != want:
                print(f"  series {name}:\n    got  {got}\n    want {want}")
        fail("streamed instants differ from the one-shot golden")
    if state["usage"] != golden_usage:
        fail("streamed usage differs from the one-shot golden")
    if delta["now_ps"] != golden["now_ps"]:
        fail(f"end time {delta['now_ps']} != golden {golden['now_ps']}")

    n_instants = sum(len(v) for v in state["instants"].values())
    print(
        f"serve_smoke: OK — {n_instants} instants over "
        f"{len(state['instants'])} series, {polls} polls, "
        f"1 checkpoint/restore, bit-identical to one-shot "
        f"(cache: {stats['cache']})"
    )


if __name__ == "__main__":
    main()
