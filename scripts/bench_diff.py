#!/usr/bin/env python3
"""Diff two bench_ablation JSON entries of the repo's perf trajectory.

Usage: bench_diff.py OLD.json NEW.json

Prints a Markdown table of the key metrics with relative deltas — the
advisory CI bench job appends it to the GitHub job summary so regressions
between BENCH_<n>.json entries are visible at a glance. Timings on shared
runners are indicative; the point is spotting order-of-magnitude drifts,
not single-digit percentages.

Exit code: 0 when no metric regressed by more than REGRESSION_THRESHOLD
(20%), 1 when at least one did (regressed rows carry a ⚠ marker). The
bench job itself stays advisory — it turns a non-zero exit into a warning
annotation instead of failing the build. 2 = usage error, 3 = a BENCH
file is missing/unreadable, 4 = a BENCH file is not valid JSON — distinct
codes so CI annotations can tell a broken artifact from a perf regression.
"""

import json
import sys

REGRESSION_THRESHOLD = 0.20

EXIT_USAGE = 2
EXIT_MISSING = 3
EXIT_MALFORMED = 4


class BenchFileError(Exception):
    """A BENCH json could not be read or parsed; .exit_code says which."""

    def __init__(self, message, exit_code):
        super().__init__(message)
        self.exit_code = exit_code


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        raise BenchFileError(
            f"bench_diff: cannot read '{path}': {e.strerror or e}",
            EXIT_MISSING) from e
    except json.JSONDecodeError as e:
        raise BenchFileError(
            f"bench_diff: '{path}' is not valid JSON "
            f"(line {e.lineno}, column {e.colno}: {e.msg}); "
            f"re-record it with scripts/bench_report.sh",
            EXIT_MALFORMED) from e


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def rel_delta(old, new):
    if old is None or new is None or not isinstance(old, (int, float)) \
            or not isinstance(new, (int, float)) or old == 0:
        return None
    return (new - old) / old


def delta_str(old, new):
    d = rel_delta(old, new)
    return "-" if d is None else f"{100.0 * d:+.1f}%"


def rows(doc):
    """Flatten the comparable metrics of one bench_ablation document.

    Each entry maps a metric name to (value, direction), direction being
    'lower' (times, ns) or 'higher' (speed-ups); None direction = not a
    perf metric (informational only, never a regression). The sweeps are
    keyed by their sweep parameter so entries align across documents even
    when the sweep grids change.
    """
    out = {}
    out["native event (ns)"] = (doc.get("native_event_ns"), "lower")
    fold = doc.get("fold", {})
    out["fold: raw run (s)"] = (fold.get("raw_run_s"), "lower")
    out["fold: folded run (s)"] = (fold.get("folded_run_s"), "lower")
    tb = doc.get("throughput_bound", {})
    out["throughput bound rel. diff"] = (tb.get("relative_difference"), None)
    for entry in doc.get("pad_sweep", []):
        key = f"pad {entry.get('pad_nodes')}: ns/token/node"
        out[key] = (entry.get("ns_per_token_per_node"), "lower")
    for entry in doc.get("event_cost_sweep", []):
        key = f"event cost +{fmt(entry.get('event_overhead_ns'))}ns: speed-up"
        out[key] = (entry.get("speedup"), "higher")
    for entry in doc.get("batch_sweep", []):
        key = (f"batch x{entry.get('instances')} pad "
               f"{entry.get('pad_nodes_per_instance')}: speed-up")
        out[key] = (entry.get("batched_speedup"), "higher")
    for entry in doc.get("mixed_batch_sweep", []):
        key = (f"mixed batch x{entry.get('instances')} "
               f"({entry.get('groups')} groups) pad "
               f"{entry.get('pad_nodes_per_instance')}: speed-up")
        out[key] = (entry.get("batched_speedup"), "higher")
    pc = doc.get("program_cache", {})
    out["program cache: warm setup speed-up"] = (
        pc.get("warm_setup_speedup"), "higher")
    out["program cache: study matrix speed-up"] = (
        pc.get("study_warm_speedup"), None)
    ss = doc.get("serve_session", {})
    out["serve session: incremental overhead"] = (
        ss.get("incremental_overhead"), None)
    return out


def regressed(old, new, direction):
    """True when the metric moved against its direction by > threshold."""
    d = rel_delta(old, new)
    if d is None or direction is None:
        return False
    if direction == "lower":
        return d > REGRESSION_THRESHOLD
    return d < -REGRESSION_THRESHOLD


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return EXIT_USAGE
    old_path, new_path = sys.argv[1], sys.argv[2]
    try:
        old_doc, new_doc = load(old_path), load(new_path)
    except BenchFileError as e:
        print(e, file=sys.stderr)
        return e.exit_code
    for path, doc in ((old_path, old_doc), (new_path, new_doc)):
        if not isinstance(doc, dict):
            print(f"bench_diff: '{path}' is valid JSON but not a bench "
                  f"document (expected an object, got "
                  f"{type(doc).__name__})", file=sys.stderr)
            return EXIT_MALFORMED
    old = rows(old_doc)
    new = rows(new_doc)

    any_regression = False
    print(f"### Bench trajectory: `{old_path}` → `{new_path}`\n")
    print("| metric | old | new | delta |")
    print("|---|---|---|---|")
    for key in list(old.keys()) + [k for k in new if k not in old]:
        o, direction = old.get(key, (None, None))
        n, n_dir = new.get(key, (None, None))
        mark = ""
        if regressed(o, n, direction or n_dir):
            any_regression = True
            mark = " ⚠"
        print(f"| {key}{mark} | {fmt(o)} | {fmt(n)} | {delta_str(o, n)} |")
    print()
    print("_Speed-ups: higher is better. Times/ns: lower is better. "
          "Shared-runner timings are indicative only._")
    if any_regression:
        print(f"\n**⚠ at least one metric regressed by more than "
              f"{REGRESSION_THRESHOLD:.0%}.**")
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an
        # error worth a traceback. Exit like the tables were printed.
        sys.exit(0)
