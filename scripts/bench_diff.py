#!/usr/bin/env python3
"""Diff two bench_ablation JSON entries of the repo's perf trajectory.

Usage: bench_diff.py OLD.json NEW.json

Prints a Markdown table of the key metrics with relative deltas — the
advisory CI bench job appends it to the GitHub job summary so regressions
between BENCH_<n>.json entries are visible at a glance. Timings on shared
runners are indicative; the point is spotting order-of-magnitude drifts,
not single-digit percentages.

Exit code is always 0: the job is advisory, the table is the signal.
"""

import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def delta(old, new):
    if old is None or new is None or not isinstance(old, (int, float)) \
            or not isinstance(new, (int, float)) or old == 0:
        return "-"
    return f"{100.0 * (new - old) / old:+.1f}%"


def rows(doc):
    """Flatten the comparable metrics of one bench_ablation document.

    Lower-is-better metrics carry 'time' semantics (runs, ns); the sweeps
    are keyed by their sweep parameter so entries align across documents
    even when the sweep grids change.
    """
    out = {}
    out["native event (ns)"] = doc.get("native_event_ns")
    fold = doc.get("fold", {})
    out["fold: raw run (s)"] = fold.get("raw_run_s")
    out["fold: folded run (s)"] = fold.get("folded_run_s")
    tb = doc.get("throughput_bound", {})
    out["throughput bound rel. diff"] = tb.get("relative_difference")
    for entry in doc.get("pad_sweep", []):
        key = f"pad {entry.get('pad_nodes')}: ns/token/node"
        out[key] = entry.get("ns_per_token_per_node")
    for entry in doc.get("event_cost_sweep", []):
        key = f"event cost +{fmt(entry.get('event_overhead_ns'))}ns: speed-up"
        out[key] = entry.get("speedup")
    for entry in doc.get("batch_sweep", []):
        key = (f"batch x{entry.get('instances')} pad "
               f"{entry.get('pad_nodes_per_instance')}: speed-up")
        out[key] = entry.get("batched_speedup")
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    old_path, new_path = sys.argv[1], sys.argv[2]
    old = rows(load(old_path))
    new = rows(load(new_path))

    print(f"### Bench trajectory: `{old_path}` → `{new_path}`\n")
    print("| metric | old | new | delta |")
    print("|---|---|---|---|")
    for key in list(old.keys()) + [k for k in new if k not in old]:
        o, n = old.get(key), new.get(key)
        print(f"| {key} | {fmt(o)} | {fmt(n)} | {delta(o, n)} |")
    print()
    print("_Speed-ups: higher is better. Times/ns: lower is better. "
          "Shared-runner timings are indicative only._")
    return 0


if __name__ == "__main__":
    sys.exit(main())
