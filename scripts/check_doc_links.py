#!/usr/bin/env python3
"""Check the repo's Markdown docs for dead relative links.

Usage: check_doc_links.py [FILE.md ...]

With no arguments, checks README.md and docs/*.md (run from anywhere; the
repo root is resolved from this script's location). For every Markdown
inline link `[text](target)` whose target is not an external URL
(http/https/mailto) or a pure in-page anchor (#...), the referenced path —
resolved relative to the linking file, anchors stripped — must exist.

Exit code: 0 when every link resolves, 1 otherwise (one line per dead
link). Wired into the advisory CI docs job.
"""

import os
import re
import sys

# Inline links, excluding images' alt-text brackets handled identically;
# the target group stops at the first closing paren (no nested parens in
# this repo's docs).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")


def links_of(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks frequently contain bracket/paren sequences that
    # are not links (e.g. C++ lambdas); strip them before matching.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    text = re.sub(r"`[^`\n]*`", "", text)
    return LINK_RE.findall(text)


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = sys.argv[1:]
    if not files:
        files = [os.path.join(root, "README.md")]
        docs = os.path.join(root, "docs")
        if os.path.isdir(docs):
            files += sorted(
                os.path.join(docs, f) for f in os.listdir(docs)
                if f.endswith(".md"))

    dead = []
    for path in files:
        if not os.path.isfile(path):
            dead.append((path, "(file itself missing)"))
            continue
        base = os.path.dirname(path)
        for target in links_of(path):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not os.path.exists(os.path.join(base, rel)):
                dead.append((path, target))

    for path, target in dead:
        print(f"dead link: {os.path.relpath(path, root)} -> {target}")
    if dead:
        print(f"{len(dead)} dead link(s) found.", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
